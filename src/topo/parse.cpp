#include "topo/parse.h"

#include <sstream>

#include "util/error.h"
#include "util/strings.h"

namespace merlin::topo {

Topology parse_topology(const std::string& text) {
    Topology topo;
    std::istringstream in(text);
    std::string raw;
    int line_no = 0;
    while (std::getline(in, raw)) {
        ++line_no;
        std::string line{trim(raw)};
        const auto hash = line.find('#');
        if (hash != std::string::npos) line = std::string(trim(line.substr(0, hash)));
        if (line.empty()) continue;

        std::istringstream fields(line);
        std::string directive;
        fields >> directive;
        if (directive == "host" || directive == "switch" ||
            directive == "middlebox") {
            std::string name;
            if (!(fields >> name))
                throw Parse_error("expected node name", line_no, 0);
            if (directive == "host")
                topo.add_host(name);
            else if (directive == "switch")
                topo.add_switch(name);
            else
                topo.add_middlebox(name);
        } else if (directive == "link") {
            std::string a;
            std::string b;
            std::string rate;
            if (!(fields >> a >> b >> rate))
                throw Parse_error("expected 'link <a> <b> <rate>'", line_no, 0);
            topo.add_link(a, b, parse_bandwidth(rate));
        } else if (directive == "function") {
            std::string fn;
            if (!(fields >> fn))
                throw Parse_error("expected function name", line_no, 0);
            std::string at;
            bool any = false;
            while (fields >> at) {
                topo.allow_function(fn, at);
                any = true;
            }
            if (!any)
                throw Parse_error("function needs at least one placement",
                                  line_no, 0);
        } else {
            throw Parse_error("unknown directive '" + directive + "'", line_no,
                              0);
        }
    }
    return topo;
}

std::string to_text(const Topology& topo) {
    std::ostringstream out;
    for (NodeId id = 0; id < topo.node_count(); ++id) {
        const Node& n = topo.node(id);
        switch (n.kind) {
            case Node_kind::host: out << "host " << n.name << '\n'; break;
            case Node_kind::switch_: out << "switch " << n.name << '\n'; break;
            case Node_kind::middlebox:
                out << "middlebox " << n.name << '\n';
                break;
        }
    }
    for (const Link& l : topo.links())
        out << "link " << topo.node(l.a).name << ' ' << topo.node(l.b).name
            << ' ' << to_string(l.capacity) << '\n';
    for (const std::string& fn : topo.function_names()) {
        out << "function " << fn;
        for (NodeId at : topo.placements(fn)) out << ' ' << topo.node(at).name;
        out << '\n';
    }
    return out.str();
}

}  // namespace merlin::topo
