// Plain-text topology format, used by examples and tests.
//
// One directive per line; '#' starts a comment.
//
//   host h1
//   switch s1
//   middlebox m1
//   link h1 s1 1Gbps
//   function dpi m1 h2      # dpi may be placed at m1 or h2
#pragma once

#include <string>

#include "topo/topology.h"

namespace merlin::topo {

// Parses the textual format above. Throws Topology_error / Parse_error on
// malformed input.
[[nodiscard]] Topology parse_topology(const std::string& text);

// Serializes a topology back into the textual format (round-trips with
// parse_topology up to comment/ordering differences).
[[nodiscard]] std::string to_text(const Topology& topo);

}  // namespace merlin::topo
