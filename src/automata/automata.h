// Finite automata over the location alphabet.
//
// Merlin path expressions are regular expressions whose letters are network
// locations (Section 2.1). The compiler turns each statement's expression
// into an NFA M_i (Section 3.2, Lemma 1), and the negotiator's verifier
// decides language inclusion between a delegated policy's expressions and the
// original's (Section 4.2). The original system used the Dprle library; this
// module provides the standard textbook constructions (Hopcroft & Ullman,
// which the paper cites): Thompson construction, epsilon elimination, subset
// construction, completion, complement, product, Hopcroft minimization,
// emptiness and inclusion.
//
// Symbols are dense integers [0, alphabet_size). The translation from named
// locations/functions to symbols is the caller's job (see Alphabet).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ir/ast.h"

namespace merlin::automata {

// ------------------------------------------------------------------ alphabet

// Maps names to symbol ids. A name may resolve to several symbols: the paper
// substitutes a packet-processing function by "the union of all locations
// associated with that function" when forming the location regex a-bar.
class Alphabet {
public:
    // Registers a location; returns its symbol id. Idempotent per name.
    int add_location(const std::string& name);
    // Registers a function name resolving to the given location names
    // (which must already be registered).
    void add_function(const std::string& name,
                      const std::vector<std::string>& locations);

    [[nodiscard]] int size() const { return static_cast<int>(names_.size()); }
    [[nodiscard]] const std::string& name(int symbol) const {
        return names_[static_cast<std::size_t>(symbol)];
    }
    [[nodiscard]] std::optional<int> location(const std::string& name) const;
    // Resolves a regex symbol: a location name gives one symbol; a function
    // name gives all its placement symbols. Empty when unknown.
    [[nodiscard]] std::vector<int> resolve(const std::string& name) const;

private:
    std::vector<std::string> names_;
    std::map<std::string, int> locations_;
    std::map<std::string, std::vector<int>> functions_;
};

// ----------------------------------------------------------------------- NFA

inline constexpr int kEpsilon = -1;
inline constexpr int kNoLabel = -1;

struct Nfa_edge {
    int symbol;  // kEpsilon or [0, alphabet_size)
    int target;
    // Index into Nfa::labels for the source-level symbol this transition was
    // compiled from, or kNoLabel. The compiler uses labels to recover *which
    // packet-processing function* a selected path performs at a location
    // (function names are substituted away in the location alphabet).
    int label = kNoLabel;
};

struct Nfa {
    int alphabet_size = 0;
    int start = 0;
    std::vector<bool> accepting;
    std::vector<std::vector<Nfa_edge>> edges;  // by source state
    std::vector<std::string> labels;           // label id -> symbol name

    [[nodiscard]] int state_count() const {
        return static_cast<int>(edges.size());
    }
    [[nodiscard]] const std::string* label_name(int label) const {
        return label == kNoLabel ? nullptr
                                 : &labels[static_cast<std::size_t>(label)];
    }
};

// Thompson construction for a path expression. Complement subterms (`!a`)
// are handled by determinizing the subexpression, complementing, and
// re-embedding. Throws Policy_error when the expression mentions a name the
// alphabet cannot resolve.
[[nodiscard]] Nfa thompson(const ir::PathPtr& path, const Alphabet& alphabet);

// Equivalent epsilon-free NFA (states renumbered, unreachable states pruned).
[[nodiscard]] Nfa remove_epsilon(const Nfa& nfa);

// True if the NFA accepts the symbol sequence.
[[nodiscard]] bool accepts(const Nfa& nfa, const std::vector<int>& word);

// ----------------------------------------------------------------------- DFA

struct Dfa {
    int alphabet_size = 0;
    int start = 0;
    std::vector<bool> accepting;
    // Complete transition table: next[state][symbol] is always a valid state.
    std::vector<std::vector<int>> next;

    [[nodiscard]] int state_count() const {
        return static_cast<int>(next.size());
    }
};

// Subset construction; the result is complete (includes a sink if needed).
[[nodiscard]] Dfa determinize(const Nfa& nfa);

[[nodiscard]] Dfa complement(const Dfa& dfa);
[[nodiscard]] Dfa intersect(const Dfa& a, const Dfa& b);
// Hopcroft's partition-refinement minimization (result is also complete).
[[nodiscard]] Dfa minimize(const Dfa& dfa);

[[nodiscard]] bool accepts(const Dfa& dfa, const std::vector<int>& word);
[[nodiscard]] bool is_empty(const Dfa& dfa);
// L(a) subset-of L(b), i.e. empty(a intersect complement(b)).
[[nodiscard]] bool subset_of(const Dfa& a, const Dfa& b);
[[nodiscard]] bool equivalent(const Dfa& a, const Dfa& b);

// Shortest accepted word (BFS); nullopt when the language is empty.
[[nodiscard]] std::optional<std::vector<int>> shortest_word(const Dfa& dfa);

// Embeds a DFA back into NFA form (used for complement subterms).
[[nodiscard]] Nfa to_nfa(const Dfa& dfa);

}  // namespace merlin::automata
