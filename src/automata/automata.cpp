#include "automata/automata.h"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <numeric>
#include <tuple>
#include <set>
#include <unordered_map>
#include <utility>

#include "util/error.h"

namespace merlin::automata {

// ------------------------------------------------------------------ alphabet

int Alphabet::add_location(const std::string& name) {
    const auto it = locations_.find(name);
    if (it != locations_.end()) return it->second;
    const int id = static_cast<int>(names_.size());
    names_.push_back(name);
    locations_.emplace(name, id);
    return id;
}

void Alphabet::add_function(const std::string& name,
                            const std::vector<std::string>& locations) {
    std::vector<int> symbols;
    symbols.reserve(locations.size());
    for (const std::string& loc : locations) {
        const auto sym = location(loc);
        if (!sym)
            throw Policy_error("function '" + name +
                               "' placed at unknown location '" + loc + "'");
        symbols.push_back(*sym);
    }
    functions_[name] = std::move(symbols);
}

std::optional<int> Alphabet::location(const std::string& name) const {
    const auto it = locations_.find(name);
    if (it == locations_.end()) return std::nullopt;
    return it->second;
}

std::vector<int> Alphabet::resolve(const std::string& name) const {
    if (const auto sym = location(name)) return {*sym};
    const auto it = functions_.find(name);
    if (it != functions_.end()) return it->second;
    return {};
}

// ----------------------------------------------------------------------- NFA

namespace {

// Thompson fragments are built into one shared state arena.
struct Builder {
    const Alphabet& alphabet;
    std::vector<std::vector<Nfa_edge>> edges;
    std::vector<std::string> labels;

    int fresh() {
        edges.emplace_back();
        return static_cast<int>(edges.size()) - 1;
    }
    void link(int from, int symbol, int to, int label = kNoLabel) {
        edges[static_cast<std::size_t>(from)].push_back(
            Nfa_edge{symbol, to, label});
    }
    int intern_label(const std::string& name) {
        for (std::size_t i = 0; i < labels.size(); ++i)
            if (labels[i] == name) return static_cast<int>(i);
        labels.push_back(name);
        return static_cast<int>(labels.size()) - 1;
    }

    struct Fragment {
        int start;
        int accept;
    };

    Fragment build(const ir::PathPtr& p) {
        using ir::Path_kind;
        switch (p->kind) {
            case Path_kind::any: {
                const Fragment f{fresh(), fresh()};
                for (int s = 0; s < alphabet.size(); ++s)
                    link(f.start, s, f.accept);
                return f;
            }
            case Path_kind::symbol: {
                const auto symbols = alphabet.resolve(p->symbol);
                if (symbols.empty())
                    throw Policy_error(
                        "path expression mentions unknown location or "
                        "function '" +
                        p->symbol + "'");
                // Function names (multi-location resolutions that are not a
                // plain location) carry a placement label.
                const bool is_function = !alphabet.location(p->symbol);
                const int label =
                    is_function ? intern_label(p->symbol) : kNoLabel;
                const Fragment f{fresh(), fresh()};
                for (int s : symbols) link(f.start, s, f.accept, label);
                return f;
            }
            case Path_kind::seq: {
                const Fragment a = build(p->lhs);
                const Fragment b = build(p->rhs);
                link(a.accept, kEpsilon, b.start);
                return Fragment{a.start, b.accept};
            }
            case Path_kind::alt: {
                const Fragment a = build(p->lhs);
                const Fragment b = build(p->rhs);
                const Fragment f{fresh(), fresh()};
                link(f.start, kEpsilon, a.start);
                link(f.start, kEpsilon, b.start);
                link(a.accept, kEpsilon, f.accept);
                link(b.accept, kEpsilon, f.accept);
                return f;
            }
            case Path_kind::star: {
                const Fragment a = build(p->lhs);
                const Fragment f{fresh(), fresh()};
                link(f.start, kEpsilon, a.start);
                link(f.start, kEpsilon, f.accept);
                link(a.accept, kEpsilon, a.start);
                link(a.accept, kEpsilon, f.accept);
                return f;
            }
            case Path_kind::not_: {
                // Complement needs determinism: build the subexpression as
                // its own NFA, determinize, complement, minimize, re-embed.
                Nfa sub;
                sub.alphabet_size = alphabet.size();
                {
                    Builder inner{alphabet, {}, {}};
                    const Fragment f = inner.build(p->lhs);
                    sub.edges = std::move(inner.edges);
                    sub.start = f.start;
                    sub.accepting.assign(sub.edges.size(), false);
                    sub.accepting[static_cast<std::size_t>(f.accept)] = true;
                }
                const Dfa comp = minimize(complement(determinize(sub)));
                // Embed: offset the DFA's states into this arena with a
                // single fresh accept state joined by epsilon edges.
                const int offset = static_cast<int>(edges.size());
                for (int q = 0; q < comp.state_count(); ++q) {
                    const int here = fresh();
                    (void)here;
                }
                const int accept = fresh();
                for (int q = 0; q < comp.state_count(); ++q) {
                    for (int s = 0; s < comp.alphabet_size; ++s)
                        link(offset + q, s,
                             offset + comp.next[static_cast<std::size_t>(q)]
                                                [static_cast<std::size_t>(s)]);
                    if (comp.accepting[static_cast<std::size_t>(q)])
                        link(offset + q, kEpsilon, accept);
                }
                return Fragment{offset + comp.start, accept};
            }
        }
        throw Error("unreachable path kind");
    }
};

// FNV-1a over a sorted-unique state set. Subset-construction and product
// interning key on these sets; hashing makes each lookup O(set size)
// instead of the O(log n) ordered-map comparisons of the original.
struct State_set_hash {
    std::size_t operator()(const std::vector<int>& v) const noexcept {
        std::uint64_t h = 1469598103934665603ull;
        for (const int x : v) {
            h ^= static_cast<std::uint32_t>(x);
            h *= 1099511628211ull;
        }
        return static_cast<std::size_t>(h);
    }
};

struct State_pair_hash {
    std::size_t operator()(const std::pair<int, int>& p) const noexcept {
        std::uint64_t h = (static_cast<std::uint64_t>(
                               static_cast<std::uint32_t>(p.first))
                           << 32) |
                          static_cast<std::uint32_t>(p.second);
        // splitmix64 finalizer
        h ^= h >> 30;
        h *= 0xbf58476d1ce4e5b9ull;
        h ^= h >> 27;
        h *= 0x94d049bb133111ebull;
        h ^= h >> 31;
        return static_cast<std::size_t>(h);
    }
};

// Epsilon closure of a state set (in place, returns sorted unique states).
std::vector<int> closure(const Nfa& nfa, std::vector<int> states) {
    std::deque<int> queue(states.begin(), states.end());
    std::set<int> seen(states.begin(), states.end());
    while (!queue.empty()) {
        const int q = queue.front();
        queue.pop_front();
        for (const Nfa_edge& e : nfa.edges[static_cast<std::size_t>(q)]) {
            if (e.symbol == kEpsilon && seen.insert(e.target).second)
                queue.push_back(e.target);
        }
    }
    return {seen.begin(), seen.end()};
}

// Epsilon closures for *every* state at once, memoized through the SCC
// condensation of the epsilon subgraph: closure(q) depends only on q's SCC,
// and an SCC's closure is its members plus the closures of its epsilon
// successors. One iterative Tarjan pass plus one sorted union per SCC
// replaces the independent BFS per state (quadratic on epsilon chains).
struct Closure_table {
    std::vector<int> scc_of;                   // state -> SCC id
    std::vector<std::vector<int>> per_scc;     // SCC id -> sorted closure

    [[nodiscard]] const std::vector<int>& of(int q) const {
        return per_scc[static_cast<std::size_t>(
            scc_of[static_cast<std::size_t>(q)])];
    }
};

Closure_table all_closures(const Nfa& nfa) {
    const int n = nfa.state_count();
    std::vector<std::vector<int>> eps(static_cast<std::size_t>(n));
    for (int q = 0; q < n; ++q)
        for (const Nfa_edge& e : nfa.edges[static_cast<std::size_t>(q)])
            if (e.symbol == kEpsilon)
                eps[static_cast<std::size_t>(q)].push_back(e.target);

    Closure_table out;
    out.scc_of.assign(static_cast<std::size_t>(n), -1);
    std::vector<int> index(static_cast<std::size_t>(n), -1);
    std::vector<int> low(static_cast<std::size_t>(n), 0);
    std::vector<bool> on_stack(static_cast<std::size_t>(n), false);
    std::vector<int> stack;
    std::vector<std::vector<int>> members;
    int next_index = 0;

    struct Frame {
        int q;
        std::size_t edge;
    };
    std::vector<Frame> frames;
    for (int root = 0; root < n; ++root) {
        if (index[static_cast<std::size_t>(root)] != -1) continue;
        frames.push_back(Frame{root, 0});
        index[static_cast<std::size_t>(root)] =
            low[static_cast<std::size_t>(root)] = next_index++;
        stack.push_back(root);
        on_stack[static_cast<std::size_t>(root)] = true;
        while (!frames.empty()) {
            Frame& f = frames.back();
            const auto& succ = eps[static_cast<std::size_t>(f.q)];
            if (f.edge < succ.size()) {
                const int t = succ[f.edge++];
                if (index[static_cast<std::size_t>(t)] == -1) {
                    index[static_cast<std::size_t>(t)] =
                        low[static_cast<std::size_t>(t)] = next_index++;
                    stack.push_back(t);
                    on_stack[static_cast<std::size_t>(t)] = true;
                    frames.push_back(Frame{t, 0});
                } else if (on_stack[static_cast<std::size_t>(t)]) {
                    low[static_cast<std::size_t>(f.q)] =
                        std::min(low[static_cast<std::size_t>(f.q)],
                                 index[static_cast<std::size_t>(t)]);
                }
            } else {
                const int q = f.q;
                if (low[static_cast<std::size_t>(q)] ==
                    index[static_cast<std::size_t>(q)]) {
                    const int id = static_cast<int>(members.size());
                    members.emplace_back();
                    while (true) {
                        const int w = stack.back();
                        stack.pop_back();
                        on_stack[static_cast<std::size_t>(w)] = false;
                        out.scc_of[static_cast<std::size_t>(w)] = id;
                        members.back().push_back(w);
                        if (w == q) break;
                    }
                }
                frames.pop_back();
                if (!frames.empty()) {
                    const int parent = frames.back().q;
                    low[static_cast<std::size_t>(parent)] =
                        std::min(low[static_cast<std::size_t>(parent)],
                                 low[static_cast<std::size_t>(q)]);
                }
            }
        }
    }

    // Tarjan pops SCCs in reverse topological order: every SCC reachable
    // through an epsilon edge already has its closure when we get here.
    out.per_scc.resize(members.size());
    for (std::size_t c = 0; c < members.size(); ++c) {
        std::vector<int> acc = members[c];
        for (const int q : members[c])
            for (const int t : eps[static_cast<std::size_t>(q)]) {
                const int tc = out.scc_of[static_cast<std::size_t>(t)];
                if (tc == static_cast<int>(c)) continue;
                const auto& sub = out.per_scc[static_cast<std::size_t>(tc)];
                acc.insert(acc.end(), sub.begin(), sub.end());
            }
        std::sort(acc.begin(), acc.end());
        acc.erase(std::unique(acc.begin(), acc.end()), acc.end());
        out.per_scc[c] = std::move(acc);
    }
    return out;
}

}  // namespace

Nfa thompson(const ir::PathPtr& path, const Alphabet& alphabet) {
    Builder b{alphabet, {}, {}};
    const Builder::Fragment f = b.build(path);
    Nfa out;
    out.alphabet_size = alphabet.size();
    out.start = f.start;
    out.edges = std::move(b.edges);
    out.labels = std::move(b.labels);
    out.accepting.assign(out.edges.size(), false);
    out.accepting[static_cast<std::size_t>(f.accept)] = true;
    return out;
}

Nfa remove_epsilon(const Nfa& nfa) {
    // For each state q, the epsilon-free machine has an edge (q, s, r) when
    // some q' in closure({q}) has (q', s, r); q accepts when its closure
    // contains an accepting state. Unreachable states are then pruned.
    const int n = nfa.state_count();
    const Closure_table closures = all_closures(nfa);

    Nfa dense;
    dense.alphabet_size = nfa.alphabet_size;
    dense.start = nfa.start;
    dense.edges.assign(static_cast<std::size_t>(n), {});
    dense.accepting.assign(static_cast<std::size_t>(n), false);
    dense.labels = nfa.labels;
    for (int q = 0; q < n; ++q) {
        std::set<std::tuple<int, int, int>> out_edges;
        for (int q2 : closures.of(q)) {
            if (nfa.accepting[static_cast<std::size_t>(q2)])
                dense.accepting[static_cast<std::size_t>(q)] = true;
            for (const Nfa_edge& e : nfa.edges[static_cast<std::size_t>(q2)])
                if (e.symbol != kEpsilon)
                    out_edges.emplace(e.symbol, e.target, e.label);
        }
        for (const auto& [s, t, l] : out_edges)
            dense.edges[static_cast<std::size_t>(q)].push_back(
                Nfa_edge{s, t, l});
    }

    // Prune states unreachable from the start.
    std::vector<int> remap(static_cast<std::size_t>(n), -1);
    std::deque<int> queue{dense.start};
    remap[static_cast<std::size_t>(dense.start)] = 0;
    int next_id = 1;
    while (!queue.empty()) {
        const int q = queue.front();
        queue.pop_front();
        for (const Nfa_edge& e : dense.edges[static_cast<std::size_t>(q)]) {
            if (remap[static_cast<std::size_t>(e.target)] == -1) {
                remap[static_cast<std::size_t>(e.target)] = next_id++;
                queue.push_back(e.target);
            }
        }
    }

    Nfa out;
    out.alphabet_size = dense.alphabet_size;
    out.start = 0;
    out.labels = dense.labels;
    out.edges.assign(static_cast<std::size_t>(next_id), {});
    out.accepting.assign(static_cast<std::size_t>(next_id), false);
    for (int q = 0; q < n; ++q) {
        const int id = remap[static_cast<std::size_t>(q)];
        if (id == -1) continue;
        out.accepting[static_cast<std::size_t>(id)] =
            dense.accepting[static_cast<std::size_t>(q)];
        for (const Nfa_edge& e : dense.edges[static_cast<std::size_t>(q)])
            out.edges[static_cast<std::size_t>(id)].push_back(
                Nfa_edge{e.symbol, remap[static_cast<std::size_t>(e.target)],
                         e.label});
    }
    return out;
}

bool accepts(const Nfa& nfa, const std::vector<int>& word) {
    std::vector<int> current = closure(nfa, {nfa.start});
    for (int symbol : word) {
        std::set<int> next;
        for (int q : current)
            for (const Nfa_edge& e : nfa.edges[static_cast<std::size_t>(q)])
                if (e.symbol == symbol) next.insert(e.target);
        current = closure(nfa, {next.begin(), next.end()});
        if (current.empty()) return false;
    }
    for (int q : current)
        if (nfa.accepting[static_cast<std::size_t>(q)]) return true;
    return false;
}

// ----------------------------------------------------------------------- DFA

Dfa determinize(const Nfa& nfa) {
    Dfa out;
    out.alphabet_size = nfa.alphabet_size;

    // State-set interning is hashed; ids are still assigned in worklist
    // discovery order, so the resulting DFA is identical to the ordered-map
    // implementation it replaced (the automata regression test pins this).
    std::unordered_map<std::vector<int>, int, State_set_hash> ids;
    std::vector<std::vector<int>> worklist;

    auto intern = [&](std::vector<int> states) {
        const auto it = ids.find(states);
        if (it != ids.end()) return it->second;
        const int id = static_cast<int>(ids.size());
        ids.emplace(states, id);
        out.accepting.push_back(false);
        for (int q : states)
            if (nfa.accepting[static_cast<std::size_t>(q)])
                out.accepting.back() = true;
        out.next.emplace_back(
            std::vector<int>(static_cast<std::size_t>(nfa.alphabet_size), -1));
        worklist.push_back(std::move(states));
        return id;
    };

    out.start = intern(closure(nfa, {nfa.start}));
    for (std::size_t w = 0; w < worklist.size(); ++w) {
        // Copy: worklist may reallocate while interning successors.
        const std::vector<int> states = worklist[w];
        const int id = ids.at(states);
        for (int s = 0; s < nfa.alphabet_size; ++s) {
            std::set<int> targets;
            for (int q : states)
                for (const Nfa_edge& e :
                     nfa.edges[static_cast<std::size_t>(q)])
                    if (e.symbol == s) targets.insert(e.target);
            const int succ =
                intern(closure(nfa, {targets.begin(), targets.end()}));
            out.next[static_cast<std::size_t>(id)][static_cast<std::size_t>(s)] =
                succ;
        }
    }
    return out;
}

Dfa complement(const Dfa& dfa) {
    Dfa out = dfa;
    for (std::size_t q = 0; q < out.accepting.size(); ++q)
        out.accepting[q] = !out.accepting[q];
    return out;
}

Dfa intersect(const Dfa& a, const Dfa& b) {
    expects(a.alphabet_size == b.alphabet_size,
            "intersecting DFAs over different alphabets");
    Dfa out;
    out.alphabet_size = a.alphabet_size;

    std::unordered_map<std::pair<int, int>, int, State_pair_hash> ids;
    std::vector<std::pair<int, int>> worklist;
    auto intern = [&](std::pair<int, int> qs) {
        const auto it = ids.find(qs);
        if (it != ids.end()) return it->second;
        const int id = static_cast<int>(ids.size());
        ids.emplace(qs, id);
        out.accepting.push_back(
            a.accepting[static_cast<std::size_t>(qs.first)] &&
            b.accepting[static_cast<std::size_t>(qs.second)]);
        out.next.emplace_back(
            std::vector<int>(static_cast<std::size_t>(a.alphabet_size), -1));
        worklist.push_back(qs);
        return id;
    };

    out.start = intern({a.start, b.start});
    for (std::size_t w = 0; w < worklist.size(); ++w) {
        const auto [qa, qb] = worklist[w];
        const int id = ids.at({qa, qb});
        for (int s = 0; s < a.alphabet_size; ++s) {
            const int ta =
                a.next[static_cast<std::size_t>(qa)][static_cast<std::size_t>(s)];
            const int tb =
                b.next[static_cast<std::size_t>(qb)][static_cast<std::size_t>(s)];
            out.next[static_cast<std::size_t>(id)][static_cast<std::size_t>(s)] =
                intern({ta, tb});
        }
    }
    return out;
}

Dfa minimize(const Dfa& input) {
    if (input.state_count() == 0) return input;

    // Restrict to states reachable from the start: Hopcroft's partition
    // refinement alone would keep (and count) unreachable classes.
    Dfa dfa;
    dfa.alphabet_size = input.alphabet_size;
    {
        std::vector<int> remap(static_cast<std::size_t>(input.state_count()),
                               -1);
        std::vector<int> order{input.start};
        remap[static_cast<std::size_t>(input.start)] = 0;
        for (std::size_t i = 0; i < order.size(); ++i) {
            const int q = order[i];
            for (int s = 0; s < input.alphabet_size; ++s) {
                const int t = input.next[static_cast<std::size_t>(q)]
                                        [static_cast<std::size_t>(s)];
                if (remap[static_cast<std::size_t>(t)] == -1) {
                    remap[static_cast<std::size_t>(t)] =
                        static_cast<int>(order.size());
                    order.push_back(t);
                }
            }
        }
        dfa.start = 0;
        dfa.accepting.resize(order.size());
        dfa.next.resize(order.size());
        for (std::size_t i = 0; i < order.size(); ++i) {
            const auto q = static_cast<std::size_t>(order[i]);
            dfa.accepting[i] = input.accepting[q];
            dfa.next[i].resize(static_cast<std::size_t>(input.alphabet_size));
            for (int s = 0; s < input.alphabet_size; ++s)
                dfa.next[i][static_cast<std::size_t>(s)] =
                    remap[static_cast<std::size_t>(
                        input.next[q][static_cast<std::size_t>(s)])];
        }
    }

    const int n = dfa.state_count();
    const int k = dfa.alphabet_size;

    // Hopcroft's algorithm. Partition ids per state; initial split into
    // accepting / rejecting.
    std::vector<int> part(static_cast<std::size_t>(n));
    for (int q = 0; q < n; ++q)
        part[static_cast<std::size_t>(q)] =
            dfa.accepting[static_cast<std::size_t>(q)] ? 1 : 0;
    int part_count = 2;
    // Degenerate: all states in one class.
    {
        bool has0 = false;
        bool has1 = false;
        for (int p : part) (p == 0 ? has0 : has1) = true;
        if (!has0 || !has1) {
            part_count = 1;
            std::fill(part.begin(), part.end(), 0);
        }
    }

    // Precompute reverse transitions.
    std::vector<std::vector<std::vector<int>>> reverse(
        static_cast<std::size_t>(n),
        std::vector<std::vector<int>>(static_cast<std::size_t>(k)));
    for (int q = 0; q < n; ++q)
        for (int s = 0; s < k; ++s)
            reverse[static_cast<std::size_t>(
                dfa.next[static_cast<std::size_t>(q)]
                        [static_cast<std::size_t>(s)])]
                   [static_cast<std::size_t>(s)]
                       .push_back(q);

    // Worklist of (class, symbol) splitters.
    std::deque<std::pair<int, int>> work;
    for (int s = 0; s < k; ++s) {
        work.emplace_back(0, s);
        if (part_count > 1) work.emplace_back(1, s);
    }

    std::vector<std::vector<int>> members(
        static_cast<std::size_t>(part_count));
    for (int q = 0; q < n; ++q)
        members[static_cast<std::size_t>(part[static_cast<std::size_t>(q)])]
            .push_back(q);

    while (!work.empty()) {
        const auto [cls, sym] = work.front();
        work.pop_front();
        // X = states with a transition on sym into class cls.
        std::vector<int> x;
        for (int target : members[static_cast<std::size_t>(cls)])
            for (int q :
                 reverse[static_cast<std::size_t>(target)]
                        [static_cast<std::size_t>(sym)])
                x.push_back(q);
        if (x.empty()) continue;
        std::sort(x.begin(), x.end());
        x.erase(std::unique(x.begin(), x.end()), x.end());

        // Group X by current class and split classes partially hit.
        std::map<int, std::vector<int>> hits;
        for (int q : x) hits[part[static_cast<std::size_t>(q)]].push_back(q);
        for (const auto& [old_cls, hit] : hits) {
            if (hit.size() ==
                members[static_cast<std::size_t>(old_cls)].size())
                continue;  // whole class hit; no split
            const int new_cls = part_count++;
            members.emplace_back();
            for (int q : hit) {
                part[static_cast<std::size_t>(q)] = new_cls;
                members[static_cast<std::size_t>(new_cls)].push_back(q);
            }
            auto& old_members = members[static_cast<std::size_t>(old_cls)];
            old_members.erase(
                std::remove_if(old_members.begin(), old_members.end(),
                               [&](int q) {
                                   return part[static_cast<std::size_t>(q)] ==
                                          new_cls;
                               }),
                old_members.end());
            for (int s = 0; s < k; ++s) work.emplace_back(new_cls, s);
        }
    }

    // Build the quotient automaton.
    Dfa out;
    out.alphabet_size = k;
    out.start = part[static_cast<std::size_t>(dfa.start)];
    out.accepting.assign(static_cast<std::size_t>(part_count), false);
    out.next.assign(static_cast<std::size_t>(part_count),
                    std::vector<int>(static_cast<std::size_t>(k), -1));
    for (int q = 0; q < n; ++q) {
        const int c = part[static_cast<std::size_t>(q)];
        if (dfa.accepting[static_cast<std::size_t>(q)])
            out.accepting[static_cast<std::size_t>(c)] = true;
        for (int s = 0; s < k; ++s)
            out.next[static_cast<std::size_t>(c)][static_cast<std::size_t>(s)] =
                part[static_cast<std::size_t>(
                    dfa.next[static_cast<std::size_t>(q)]
                            [static_cast<std::size_t>(s)])];
    }
    return out;
}

bool accepts(const Dfa& dfa, const std::vector<int>& word) {
    int q = dfa.start;
    for (int s : word)
        q = dfa.next[static_cast<std::size_t>(q)][static_cast<std::size_t>(s)];
    return dfa.accepting[static_cast<std::size_t>(q)];
}

bool is_empty(const Dfa& dfa) {
    std::deque<int> queue{dfa.start};
    std::vector<bool> seen(static_cast<std::size_t>(dfa.state_count()), false);
    seen[static_cast<std::size_t>(dfa.start)] = true;
    while (!queue.empty()) {
        const int q = queue.front();
        queue.pop_front();
        if (dfa.accepting[static_cast<std::size_t>(q)]) return false;
        for (int s = 0; s < dfa.alphabet_size; ++s) {
            const int t =
                dfa.next[static_cast<std::size_t>(q)][static_cast<std::size_t>(s)];
            if (!seen[static_cast<std::size_t>(t)]) {
                seen[static_cast<std::size_t>(t)] = true;
                queue.push_back(t);
            }
        }
    }
    return true;
}

bool subset_of(const Dfa& a, const Dfa& b) {
    return is_empty(intersect(a, complement(b)));
}

bool equivalent(const Dfa& a, const Dfa& b) {
    return subset_of(a, b) && subset_of(b, a);
}

std::optional<std::vector<int>> shortest_word(const Dfa& dfa) {
    struct Step {
        int state;
        int symbol;
        int parent;  // index into the BFS order, -1 for the root
    };
    std::vector<Step> order{{dfa.start, -1, -1}};
    std::vector<bool> seen(static_cast<std::size_t>(dfa.state_count()), false);
    seen[static_cast<std::size_t>(dfa.start)] = true;
    for (std::size_t i = 0; i < order.size(); ++i) {
        const auto [q, sym, parent] = order[i];
        (void)sym;
        (void)parent;
        if (dfa.accepting[static_cast<std::size_t>(q)]) {
            std::vector<int> word;
            for (std::size_t j = i; order[j].parent != -1;
                 j = static_cast<std::size_t>(order[j].parent))
                word.push_back(order[j].symbol);
            std::reverse(word.begin(), word.end());
            return word;
        }
        for (int s = 0; s < dfa.alphabet_size; ++s) {
            const int t =
                dfa.next[static_cast<std::size_t>(q)][static_cast<std::size_t>(s)];
            if (!seen[static_cast<std::size_t>(t)]) {
                seen[static_cast<std::size_t>(t)] = true;
                order.push_back(Step{t, s, static_cast<int>(i)});
            }
        }
    }
    return std::nullopt;
}

Nfa to_nfa(const Dfa& dfa) {
    Nfa out;
    out.alphabet_size = dfa.alphabet_size;
    out.start = dfa.start;
    out.accepting = dfa.accepting;
    out.edges.assign(static_cast<std::size_t>(dfa.state_count()), {});
    for (int q = 0; q < dfa.state_count(); ++q)
        for (int s = 0; s < dfa.alphabet_size; ++s)
            out.edges[static_cast<std::size_t>(q)].push_back(Nfa_edge{
                s,
                dfa.next[static_cast<std::size_t>(q)][static_cast<std::size_t>(s)],
                kNoLabel});
    return out;
}

}  // namespace merlin::automata
