// The crash-safe control-plane daemon core: transactional deltas over a
// persistent core::Engine, published as atomic immutable snapshots.
//
// merlind (tools/) keeps a Controller alive and feeds it control lines;
// concurrent readers — stats queries, codegen emitters, netsim replay —
// load the current Snapshot through an RCU-style `std::atomic<
// std::shared_ptr>` slot and never observe a torn state: a snapshot is
// fully built before the pointer swap, immutable after it, and carries a
// monotone generation number plus a content checksum readers can recompute.
//
// Every delta is a transaction. The engine itself is the shadow: readers
// only ever see the published snapshot, so the controller applies the delta
// to the engine off the serving path, gates the candidate with the policy
// linter and the symbolic update checker (analysis::Update_checker, which
// also carries the codegen::Incremental two-phase diff state), and only
// then swaps the snapshot pointer. On MIP infeasibility, verification or
// lint failure, argument errors, or an injected crash, the engine is
// rewound to its pre-delta checkpoint, the checker to its copy, and the
// caller gets a structured refusal — the serving snapshot and generation
// are untouched, bit for bit.
//
// Failure taxonomy: a solve truncated by the branch & bound node limit is
// *transient* (retried with exponential backoff + jitter and an escalating
// node budget); a *proven* infeasibility is permanent and refused at once.
// A stream that keeps sending refused commands is quarantined (graceful
// degradation: the last-good snapshot keeps serving) until released.
// Full-policy replacement runs blue/green: the replacement compiles into a
// fresh green engine while the blue one serves, passes the same gates
// (including the two-phase update proof against the serving tables), then
// atomically becomes the serving engine; drain() waits for readers of
// superseded snapshots.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/dataplane.h"
#include "codegen/codegen.h"
#include "core/engine.h"
#include "daemon/fault.h"
#include "topo/topology.h"

namespace merlin::daemon {

// One published state: everything a reader needs, immutable after the
// pointer swap. `checksum` is snapshot_fingerprint() over the other fields,
// computed before publication — a reader recomputing it proves the
// snapshot it holds was never torn or mutated.
struct Snapshot {
    std::uint64_t generation = 0;
    core::Compilation compilation;
    topo::Topology topology;
    codegen::Configuration config;  // generated tables for this compilation
    std::uint64_t checksum = 0;
};

[[nodiscard]] std::uint64_t snapshot_fingerprint(const Snapshot& snapshot);

// Structured refusal codes, stable strings for the control channel.
enum class Refusal : std::uint8_t {
    none,         // not refused
    parse,        // control line did not parse
    argument,     // engine argument error (unknown id, duplicate, bad cap)
    quarantined,  // stream is quarantined; command not attempted
    infeasible,   // provisioning proven infeasible (or greedy exhausted)
    verify,       // symbolic update checker found an error
    lint,         // policy linter found an error
    timeout,      // transient solver timeouts exhausted the retry budget
    crash,        // injected crash tore the transaction down; recovered
};

[[nodiscard]] const char* to_string(Refusal code);

struct Response {
    bool ok = false;
    Refusal code = Refusal::none;
    std::string kind;    // command kind ("add", "bandwidth", "reload", ...)
    std::string detail;  // refusal reason, or query payload (stats / gen)
    std::uint64_t generation = 0;  // serving generation after the command
    int attempts = 1;              // transaction attempts (retries + 1)
    double ms = 0;                 // wall-clock of the command
    bool drained = true;           // reload: superseded readers drained

    explicit operator bool() const { return ok; }
    // Control-channel wire form: "ok gen=<n> kind=<k> ..." or
    // "refused code=<c> gen=<n> kind=<k> reason=<text>" (ms excluded:
    // responses stay byte-deterministic for golden scripts).
    [[nodiscard]] std::string to_line() const;
};

// A parsed control line. Grammar (one command per line, '#' comments):
//
//   add [min=<rate>] [max=<rate>] <id> : <predicate> -> <path>
//   remove <id>
//   bandwidth <id> <min-rate> [<max-rate>]
//   fail <a> <b>            restore <a> <b>
//   redistribute <id>=<rate> [...]
//   reload <policy-file>    # blue/green full-policy replacement
//   stats | gen | shutdown
//   drain [<ms>]            # wait for superseded-snapshot readers
//   release <stream>        # lift a quarantine
//
// Rates are whole Mbps, or exact bits/sec with a "bps" suffix (e.g. "12",
// "12bps").
struct Command {
    enum class Kind : std::uint8_t {
        add,
        remove,
        bandwidth,
        fail,
        restore,
        redistribute,
        reload,
        stats,
        generation,
        drain,
        release,
        shutdown,
        invalid,
    };
    Kind kind = Kind::invalid;
    ir::Statement stmt;                 // add
    Bandwidth guarantee;                // add / bandwidth
    std::optional<Bandwidth> cap;       // add / bandwidth
    std::string id;                     // remove / bandwidth
    std::string node_a, node_b;         // fail / restore
    std::vector<std::pair<std::string, Bandwidth>> demands;  // redistribute
    std::string path;                   // reload: policy file
    int target_stream = -1;             // release
    std::chrono::milliseconds drain_timeout{100};  // drain
    std::string error;                  // parse diagnostic when invalid
};

// Never throws: malformed input yields Kind::invalid with `error` set (the
// daemon must survive a corrupted control channel). Blank/comment-only
// lines also come back invalid, with an empty-line diagnostic.
[[nodiscard]] Command parse_command(const std::string& line);
// Wire form of a well-formed command; parse_command(format_command(c))
// reproduces it (testgen renders its deltas through this).
[[nodiscard]] std::string format_command(const Command& command);

struct Options {
    int max_retries = 2;  // extra attempts for transient (timeout) failures
    std::chrono::milliseconds backoff_base{1};
    std::chrono::milliseconds backoff_cap{50};
    std::uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;
    // Node-budget multiplier per retry (escalating: a truncated search gets
    // more room before the next verdict).
    int retry_node_limit_factor = 8;
    // Consecutive refusals before a stream is quarantined; 0 disables.
    int quarantine_after = 3;
    bool verify_updates = true;  // symbolic update-checker gate
    bool lint_policies = true;   // policy-linter gate (errors refuse)
    std::chrono::milliseconds reload_drain_timeout{200};
    // Test seam: replaces the real sleep for backoff and drain waits.
    std::function<void(std::chrono::milliseconds)> sleeper;
};

struct Daemon_stats {
    long long accepted = 0;
    long long refused = 0;
    long long crashes = 0;   // injected crashes recovered from
    long long retries = 0;   // transient-failure re-attempts
    long long reloads = 0;   // blue/green replacements committed
    long long quarantines = 0;
};

class Controller {
public:
    // Compiles the initial policy and publishes generation 1 (throws
    // exactly where core::Engine's constructor would).
    Controller(const ir::Policy& policy, const topo::Topology& topo,
               core::Compile_options compile_options = {},
               Options options = {});

    // One control line from `stream`; never throws (parse failures and
    // engine errors become structured refusals). Commands are serialized
    // internally — concurrent callers are safe, as are readers at any time.
    Response apply_line(const std::string& line, int stream = 0);
    Response apply(const Command& command, int stream = 0);
    // Blue/green full-policy replacement (the `reload` command's core).
    Response reload(const ir::Policy& policy, int stream = 0);

    // The serving snapshot: a wait-free atomic load; the returned state is
    // immutable and stays valid for as long as the pointer is held.
    [[nodiscard]] std::shared_ptr<const Snapshot> snapshot() const {
        return slot_.load(std::memory_order_acquire);
    }
    [[nodiscard]] std::uint64_t generation() const {
        return serving_generation_.load(std::memory_order_acquire);
    }

    // Waits (bounded) until every superseded snapshot has been released by
    // its readers; true when fully drained. Blocks writers while waiting.
    bool drain(std::chrono::milliseconds timeout);

    // Faults consumed by subsequent commands: step N = the Nth command
    // (apply/apply_line/reload call, any kind) since this call.
    void set_fault_plan(Fault_plan plan);

    [[nodiscard]] bool quarantined(int stream) const;
    void release(int stream);

    [[nodiscard]] Daemon_stats stats() const;

private:
    using Clock = std::chrono::steady_clock;

    // The transaction protocol shared by every delta command: checkpoint,
    // apply, gate, publish-or-rollback, with retry/backoff on transient
    // failures and injected crash/timeout faults honoured.
    Response transact(const char* kind, int stream, bool link_delta,
                      int step,
                      const std::function<core::Update_result(core::Engine&)>&
                          apply_delta);
    Response reload_locked(const ir::Policy& policy, int stream, int step,
                           Clock::time_point start);
    Response redistribute_locked(
        const std::vector<std::pair<std::string, Bandwidth>>& demands,
        int stream, int step);

    // Refusal bookkeeping: stats, per-stream failure counts, quarantine.
    Response refuse(Response response, Refusal code, std::string reason,
                    int stream, Clock::time_point start,
                    bool stream_fault = true);
    void publish_locked(std::shared_ptr<Snapshot> next);
    bool drain_locked(std::chrono::milliseconds timeout);
    void sleep_for(std::chrono::milliseconds delay);
    std::chrono::milliseconds backoff_delay(int attempt);
    [[nodiscard]] std::uint64_t next_jitter();

    Options options_;
    core::Compile_options compile_options_;

    mutable std::mutex mutex_;  // serializes writers and admin commands
    core::Engine engine_;
    analysis::Update_checker checker_;   // gate + snapshot config (verify on)
    codegen::Incremental incremental_;   // snapshot config (verify off)
    Fault_plan faults_;
    int command_step_ = 0;
    std::uint64_t jitter_state_;
    std::map<int, int> failures_;        // consecutive refusals per stream
    std::set<int> quarantined_;
    Daemon_stats stats_;
    std::vector<std::weak_ptr<const Snapshot>> retired_;

    std::atomic<std::shared_ptr<const Snapshot>> slot_;
    std::atomic<std::uint64_t> serving_generation_{0};
};

}  // namespace merlin::daemon
