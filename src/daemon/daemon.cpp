#include "daemon/daemon.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "analysis/lint.h"
#include "core/logical.h"
#include "negotiator/negotiator.h"
#include "parser/parser.h"
#include "util/error.h"

namespace merlin::daemon {

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

std::vector<std::string> tokenize(const std::string& text) {
    std::istringstream in(text);
    std::vector<std::string> tokens;
    std::string token;
    while (in >> token) tokens.push_back(token);
    return tokens;
}

// "<n>" (whole Mbps) or "<n>bps" (exact bits/sec); throws on anything else.
Bandwidth parse_rate(const std::string& text) {
    std::string digits = text;
    bool exact = false;
    if (digits.size() > 3 && digits.ends_with("bps")) {
        digits.resize(digits.size() - 3);
        exact = true;
    }
    if (digits.empty() ||
        !std::all_of(digits.begin(), digits.end(),
                     [](unsigned char c) { return std::isdigit(c) != 0; }))
        throw Error("malformed rate (expected <Mbps> or <n>bps): " + text);
    const std::uint64_t value = std::stoull(digits);
    return exact ? bits_per_sec(value) : mbps(value);
}

std::string format_rate(Bandwidth rate) {
    return std::to_string(rate.bps()) + "bps";
}

// First error-severity diagnostic, rendered; the refusal's reason.
std::string first_error(const analysis::Report& report) {
    for (const analysis::Diagnostic& d : report)
        if (d.severity == analysis::Severity::error) return to_text(d);
    return report.empty() ? std::string("unspecified analysis failure")
                          : to_text(report.front());
}

// FNV-1a over the snapshot's content (generation, plans, provisioned
// paths, link states, table sizes). A reader recomputing this over a held
// snapshot proves the state it observed was never torn or mutated.
struct Fnv {
    std::uint64_t h = 1469598103934665603ull;
    void bytes(const void* data, std::size_t n) {
        const auto* p = static_cast<const unsigned char*>(data);
        for (std::size_t i = 0; i < n; ++i) {
            h ^= p[i];
            h *= 1099511628211ull;
        }
    }
    void u64(std::uint64_t v) { bytes(&v, sizeof v); }
    void str(const std::string& s) {
        u64(s.size());
        bytes(s.data(), s.size());
    }
};

}  // namespace

std::uint64_t snapshot_fingerprint(const Snapshot& snapshot) {
    Fnv f;
    f.u64(snapshot.generation);
    f.u64(snapshot.compilation.feasible ? 1 : 0);
    f.str(snapshot.compilation.diagnostic);
    f.u64(snapshot.compilation.plans.size());
    for (const core::Statement_plan& plan : snapshot.compilation.plans) {
        f.str(plan.statement.id);
        f.u64(plan.guarantee.bps());
        f.u64(plan.cap ? plan.cap->bps() : ~0ull);
        f.u64(static_cast<std::uint64_t>(plan.path_class + 1));
        if (plan.path) {
            f.u64(plan.path->nodes.size());
            for (const topo::NodeId node : plan.path->nodes)
                f.u64(static_cast<std::uint64_t>(node));
            f.u64(plan.path->rate.bps());
        }
    }
    f.u64(snapshot.compilation.trees.size());
    for (int link = 0; link < snapshot.topology.link_count(); ++link)
        f.u64(snapshot.topology.link_up(link) ? 1 : 0);
    f.u64(snapshot.config.flow_rules.size());
    f.u64(snapshot.config.queues.size());
    f.u64(snapshot.config.tc_commands.size());
    f.u64(snapshot.config.iptables_rules.size());
    f.u64(snapshot.config.click_configs.size());
    return f.h;
}

const char* to_string(Refusal code) {
    switch (code) {
        case Refusal::none: return "none";
        case Refusal::parse: return "parse";
        case Refusal::argument: return "argument";
        case Refusal::quarantined: return "quarantined";
        case Refusal::infeasible: return "infeasible";
        case Refusal::verify: return "verify";
        case Refusal::lint: return "lint";
        case Refusal::timeout: return "timeout";
        case Refusal::crash: return "crash";
    }
    return "?";
}

std::string Response::to_line() const {
    std::string out = ok ? "ok" : "refused";
    if (!ok) out += " code=" + std::string(daemon::to_string(code));
    out += " gen=" + std::to_string(generation);
    out += " kind=" + kind;
    if (attempts != 1) out += " attempts=" + std::to_string(attempts);
    if (kind == "reload" || kind == "drain")
        out += std::string(" drained=") + (drained ? "1" : "0");
    if (!detail.empty()) out += (ok ? " " : " reason=") + detail;
    return out;
}

Command parse_command(const std::string& line) {
    Command cmd;
    std::string text = line;
    if (const std::size_t hash = text.find('#'); hash != std::string::npos)
        text.resize(hash);
    const std::vector<std::string> tokens = tokenize(text);
    if (tokens.empty()) {
        cmd.error = "empty control line";
        return cmd;
    }
    const std::string& verb = tokens[0];
    try {
        if (verb == "add") {
            std::size_t i = 1;
            for (; i < tokens.size(); ++i) {
                if (tokens[i].starts_with("min="))
                    cmd.guarantee = parse_rate(tokens[i].substr(4));
                else if (tokens[i].starts_with("max="))
                    cmd.cap = parse_rate(tokens[i].substr(4));
                else
                    break;
            }
            std::string stmt_text;
            for (; i < tokens.size(); ++i) {
                if (!stmt_text.empty()) stmt_text += ' ';
                stmt_text += tokens[i];
            }
            if (stmt_text.empty())
                throw Error("add expects a statement: " + text);
            const ir::Policy parsed =
                parser::parse_policy("[ " + stmt_text + " ]");
            if (parsed.statements.size() != 1)
                throw Error("add expects exactly one statement: " + text);
            cmd.stmt = parsed.statements[0];
            cmd.kind = Command::Kind::add;
        } else if (verb == "remove" && tokens.size() == 2) {
            cmd.id = tokens[1];
            cmd.kind = Command::Kind::remove;
        } else if (verb == "bandwidth" &&
                   (tokens.size() == 3 || tokens.size() == 4)) {
            cmd.id = tokens[1];
            cmd.guarantee = parse_rate(tokens[2]);
            if (tokens.size() == 4) cmd.cap = parse_rate(tokens[3]);
            cmd.kind = Command::Kind::bandwidth;
        } else if ((verb == "fail" || verb == "restore") &&
                   tokens.size() == 3) {
            cmd.node_a = tokens[1];
            cmd.node_b = tokens[2];
            cmd.kind = verb == "fail" ? Command::Kind::fail
                                      : Command::Kind::restore;
        } else if (verb == "redistribute" && tokens.size() >= 2) {
            for (std::size_t k = 1; k < tokens.size(); ++k) {
                const std::size_t eq = tokens[k].find('=');
                if (eq == std::string::npos || eq == 0)
                    throw Error("redistribute expects <id>=<rate>: " +
                                tokens[k]);
                cmd.demands.emplace_back(tokens[k].substr(0, eq),
                                         parse_rate(tokens[k].substr(eq + 1)));
            }
            cmd.kind = Command::Kind::redistribute;
        } else if (verb == "reload" && tokens.size() == 2) {
            cmd.path = tokens[1];
            cmd.kind = Command::Kind::reload;
        } else if (verb == "stats" && tokens.size() == 1) {
            cmd.kind = Command::Kind::stats;
        } else if (verb == "gen" && tokens.size() == 1) {
            cmd.kind = Command::Kind::generation;
        } else if (verb == "drain" && tokens.size() <= 2) {
            if (tokens.size() == 2)
                cmd.drain_timeout = std::chrono::milliseconds(
                    std::stoll(tokens[1]));
            cmd.kind = Command::Kind::drain;
        } else if (verb == "release" && tokens.size() == 2) {
            cmd.target_stream = std::stoi(tokens[1]);
            cmd.kind = Command::Kind::release;
        } else if (verb == "shutdown" && tokens.size() == 1) {
            cmd.kind = Command::Kind::shutdown;
        } else {
            throw Error("malformed control command: " + text);
        }
    } catch (const std::exception& e) {
        cmd.kind = Command::Kind::invalid;
        cmd.error = e.what();
    }
    return cmd;
}

std::string format_command(const Command& command) {
    switch (command.kind) {
        case Command::Kind::add: {
            std::string out = "add";
            if (command.guarantee.bps() > 0)
                out += " min=" + format_rate(command.guarantee);
            if (command.cap) out += " max=" + format_rate(*command.cap);
            out += ' ' + command.stmt.id + " : " +
                   ir::to_string(command.stmt.predicate) + " -> " +
                   ir::to_string(command.stmt.path);
            return out;
        }
        case Command::Kind::remove:
            return "remove " + command.id;
        case Command::Kind::bandwidth: {
            std::string out =
                "bandwidth " + command.id + ' ' + format_rate(command.guarantee);
            if (command.cap) out += ' ' + format_rate(*command.cap);
            return out;
        }
        case Command::Kind::fail:
            return "fail " + command.node_a + ' ' + command.node_b;
        case Command::Kind::restore:
            return "restore " + command.node_a + ' ' + command.node_b;
        case Command::Kind::redistribute: {
            std::string out = "redistribute";
            for (const auto& [id, rate] : command.demands)
                out += ' ' + id + '=' + format_rate(rate);
            return out;
        }
        case Command::Kind::reload:
            return "reload " + command.path;
        case Command::Kind::stats:
            return "stats";
        case Command::Kind::generation:
            return "gen";
        case Command::Kind::drain:
            return "drain " + std::to_string(command.drain_timeout.count());
        case Command::Kind::release:
            return "release " + std::to_string(command.target_stream);
        case Command::Kind::shutdown:
            return "shutdown";
        case Command::Kind::invalid:
            break;
    }
    return "# invalid command";
}

// ----------------------------------------------------------------- controller

Controller::Controller(const ir::Policy& policy, const topo::Topology& topo,
                       core::Compile_options compile_options, Options options)
    : options_(std::move(options)),
      compile_options_(compile_options),
      engine_(policy, topo, compile_options),
      jitter_state_(options_.jitter_seed) {
    // Startup gates: the daemon must not begin serving a state it would
    // refuse as an update. (An infeasible initial compile is served as-is —
    // merlinc parity — with gates deferred until the first feasible state.)
    auto first = std::make_shared<Snapshot>();
    first->generation = 1;
    first->compilation = engine_.current();
    first->topology = engine_.topology();
    if (engine_.current().feasible) {
        if (options_.lint_policies) {
            const analysis::Report report =
                analysis::lint_policy(engine_.policy(), engine_.topology());
            if (analysis::has_errors(report))
                throw Error("initial policy fails lint: " +
                            first_error(report));
        }
        if (options_.verify_updates) {
            const analysis::Report report =
                checker_.step(engine_.current(), engine_.topology(), true);
            if (analysis::has_errors(report))
                throw Error("initial policy fails verification: " +
                            first_error(report));
            first->config = checker_.config();
        } else {
            (void)incremental_.update(engine_.current(), engine_.topology());
            first->config = incremental_.config();
        }
    }
    first->checksum = snapshot_fingerprint(*first);
    slot_.store(std::move(first), std::memory_order_release);
    serving_generation_.store(1, std::memory_order_release);
}

Response Controller::apply_line(const std::string& line, int stream) {
    return apply(parse_command(line), stream);
}

namespace {

// The negotiator-mediated redistribute (paper §4.3): wrap the engine's
// current statements in a pooled-cap envelope, adopt the current division
// as its refinement, then re-divide by demand — every adopted change lands
// in the engine as cap-only set_bandwidth deltas. Throws on rejection; the
// surrounding transaction rolls the engine back.
core::Update_result apply_redistribute(
    core::Engine& engine,
    const std::vector<std::pair<std::string, Bandwidth>>& demands) {
    const ir::Policy active = engine.policy();
    ir::Policy envelope;
    ir::FormulaPtr formula;
    const auto conjoin = [&formula](ir::FormulaPtr leaf) {
        formula = formula ? ir::formula_and(formula, std::move(leaf))
                          : std::move(leaf);
    };
    ir::Term pool_term;
    Bandwidth pool;
    for (const ir::Statement& stmt : active.statements) {
        envelope.statements.push_back(stmt);
        if (const Bandwidth g = engine.guarantee_of(stmt.id); g.bps() > 0) {
            ir::Term term;
            term.ids.push_back(stmt.id);
            conjoin(ir::formula_min(std::move(term), g));
        }
        if (const std::optional<Bandwidth> cap = engine.cap_of(stmt.id)) {
            pool_term.ids.push_back(stmt.id);
            pool += *cap;
        }
    }
    if (pool_term.ids.empty())
        throw Policy_error("redistribute: no capped statements to re-divide");
    conjoin(ir::formula_max(std::move(pool_term), pool));
    envelope.formula = formula;
    negotiator::Negotiator root("merlind", envelope,
                                core::make_alphabet(engine.topology()));
    root.drive(&engine);
    const negotiator::Verdict adopted = root.propose(active);
    if (!adopted.valid)
        throw Policy_error("redistribute: active division rejected: " +
                           adopted.reason);
    std::map<std::string, Bandwidth> by_id;
    for (const auto& [id, demand] : demands) by_id[id] = demand;
    const negotiator::Verdict verdict = root.redistribute(by_id);
    if (!verdict.valid)
        throw Policy_error("redistribute rejected: " + verdict.reason);
    core::Update_result result;
    result.kind = "redistribute";
    result.feasible = engine.current().feasible;
    result.diagnostic = engine.current().diagnostic;
    return result;
}

}  // namespace

Response Controller::apply(const Command& command, int stream) {
    std::lock_guard<std::mutex> lock(mutex_);
    const Clock::time_point start = Clock::now();
    // Every command — delta, admin, or unparsable — consumes one fault
    // step, so plans anchor to the line position in the control stream.
    const int step = command_step_++;
    switch (command.kind) {
        case Command::Kind::add:
            return transact("add", stream, false, step,
                            [&](core::Engine& engine) {
                                return engine.add_statement(command.stmt,
                                                            command.guarantee,
                                                            command.cap);
                            });
        case Command::Kind::remove:
            return transact("remove", stream, false, step,
                            [&](core::Engine& engine) {
                                return engine.remove_statement(command.id);
                            });
        case Command::Kind::bandwidth:
            return transact("bandwidth", stream, false, step,
                            [&](core::Engine& engine) {
                                return engine.set_bandwidth(command.id,
                                                            command.guarantee,
                                                            command.cap);
                            });
        case Command::Kind::fail:
            return transact("fail", stream, true, step,
                            [&](core::Engine& engine) {
                                return engine.fail_link(command.node_a,
                                                        command.node_b);
                            });
        case Command::Kind::restore:
            return transact("restore", stream, true, step,
                            [&](core::Engine& engine) {
                                return engine.restore_link(command.node_a,
                                                           command.node_b);
                            });
        case Command::Kind::redistribute:
            return transact("redistribute", stream, false, step,
                            [&](core::Engine& engine) {
                                return apply_redistribute(engine,
                                                          command.demands);
                            });
        case Command::Kind::reload: {
            Response resp;
            resp.kind = "reload";
            std::ifstream in(command.path);
            if (!in)
                return refuse(std::move(resp), Refusal::argument,
                              "cannot read policy file: " + command.path,
                              stream, start);
            std::stringstream buffer;
            buffer << in.rdbuf();
            ir::Policy policy;
            try {
                policy = parser::parse_policy(buffer.str());
            } catch (const std::exception& e) {
                return refuse(std::move(resp), Refusal::argument, e.what(),
                              stream, start);
            }
            return reload_locked(policy, stream, step, start);
        }
        case Command::Kind::stats: {
            Response resp;
            resp.kind = "stats";
            resp.ok = true;
            resp.generation =
                serving_generation_.load(std::memory_order_relaxed);
            const std::shared_ptr<const Snapshot> snap = snapshot();
            resp.detail =
                "accepted=" + std::to_string(stats_.accepted) +
                " refused=" + std::to_string(stats_.refused) +
                " crashes=" + std::to_string(stats_.crashes) +
                " retries=" + std::to_string(stats_.retries) +
                " reloads=" + std::to_string(stats_.reloads) +
                " quarantines=" + std::to_string(stats_.quarantines) +
                " statements=" +
                std::to_string(snap->compilation.plans.size()) +
                " rules=" + std::to_string(snap->config.total_instructions());
            resp.ms = ms_since(start);
            return resp;
        }
        case Command::Kind::generation: {
            Response resp;
            resp.kind = "gen";
            resp.ok = true;
            resp.generation =
                serving_generation_.load(std::memory_order_relaxed);
            resp.ms = ms_since(start);
            return resp;
        }
        case Command::Kind::drain: {
            Response resp;
            resp.kind = "drain";
            resp.ok = true;
            resp.drained = drain_locked(command.drain_timeout);
            resp.generation =
                serving_generation_.load(std::memory_order_relaxed);
            resp.ms = ms_since(start);
            return resp;
        }
        case Command::Kind::release: {
            Response resp;
            resp.kind = "release";
            resp.ok = true;
            quarantined_.erase(command.target_stream);
            failures_.erase(command.target_stream);
            resp.generation =
                serving_generation_.load(std::memory_order_relaxed);
            resp.ms = ms_since(start);
            return resp;
        }
        case Command::Kind::shutdown: {
            Response resp;
            resp.kind = "shutdown";
            resp.ok = true;
            resp.generation =
                serving_generation_.load(std::memory_order_relaxed);
            resp.ms = ms_since(start);
            return resp;
        }
        case Command::Kind::invalid:
            break;
    }
    Response resp;
    resp.kind = "parse";
    return refuse(std::move(resp), Refusal::parse,
                  command.error.empty() ? "malformed control line"
                                        : command.error,
                  stream, start);
}

Response Controller::reload(const ir::Policy& policy, int stream) {
    std::lock_guard<std::mutex> lock(mutex_);
    return reload_locked(policy, stream, command_step_++, Clock::now());
}

Response Controller::transact(
    const char* kind, int stream, bool link_delta, int step,
    const std::function<core::Update_result(core::Engine&)>& apply_delta) {
    const Clock::time_point start = Clock::now();
    Response resp;
    resp.kind = kind;
    if (quarantined_.contains(stream))
        return refuse(std::move(resp), Refusal::quarantined,
                      "stream " + std::to_string(stream) +
                          " is quarantined (send `release " +
                          std::to_string(stream) + "` to resume)",
                      stream, start, /*stream_fault=*/false);

    int timeout_attempts = 0;
    bool crash_before = false;
    bool crash_between = false;
    for (const Fault_event& event : faults_.at(step)) {
        switch (event.kind) {
            case Fault_kind::solver_timeout:
                timeout_attempts = std::max(timeout_attempts, event.count);
                break;
            case Fault_kind::crash_before_publish:
                crash_before = true;
                break;
            case Fault_kind::crash_between_prepare_and_commit:
                crash_between = true;
                break;
            default:
                break;
        }
    }

    const int saved_limit = engine_.mip_node_limit();
    const analysis::Update_checker checker_backup = checker_;
    const codegen::Incremental incremental_backup = incremental_;
    core::Engine::Checkpoint saved;
    int attempt = 0;
    for (;;) {
        ++attempt;
        resp.attempts = attempt;
        saved = engine_.checkpoint();
        // Timeout injection clamps the node budget for the first `count`
        // attempts; genuine retries escalate it instead.
        if (attempt <= timeout_attempts) {
            engine_.set_mip_node_limit(1);
        } else if (attempt > 1) {
            long long budget = std::max(saved_limit, 1);
            for (int i = 1; i < attempt; ++i)
                budget = std::min<long long>(
                    budget * options_.retry_node_limit_factor, 1000000000LL);
            engine_.set_mip_node_limit(static_cast<int>(budget));
        }
        core::Update_result result;
        try {
            result = apply_delta(engine_);
        } catch (const std::exception& e) {
            // Engine delta ops are strongly exception safe: nothing moved.
            engine_.set_mip_node_limit(saved_limit);
            return refuse(std::move(resp), Refusal::argument, e.what(),
                          stream, start);
        }
        engine_.set_mip_node_limit(saved_limit);
        // An injected timeout discards the attempt's outcome wholesale —
        // even a feasible answer "arrived too late" — so the retry path is
        // exercised deterministically on any topology.
        const bool injected_timeout = attempt <= timeout_attempts;
        if (result.feasible && !injected_timeout) break;
        // Truncated search (node limit hit, nothing proved) is transient;
        // a proven infeasibility is permanent.
        const bool transient =
            injected_timeout ||
            (result.solver_run &&
             !engine_.current().provision.proven_infeasible);
        if (injected_timeout) result.diagnostic = "injected solver timeout";
        engine_.restore(saved);
        if (transient && attempt <= options_.max_retries) {
            ++stats_.retries;
            sleep_for(backoff_delay(attempt));
            continue;
        }
        return refuse(std::move(resp),
                      transient ? Refusal::timeout : Refusal::infeasible,
                      result.diagnostic.empty() ? "provisioning failed"
                                                : result.diagnostic,
                      stream, start);
    }

    // Gates on the candidate (the slot still serves the old snapshot).
    if (options_.lint_policies) {
        const analysis::Report report =
            analysis::lint_policy(engine_.policy(), engine_.topology());
        if (analysis::has_errors(report)) {
            engine_.restore(saved);
            return refuse(std::move(resp), Refusal::lint, first_error(report),
                          stream, start);
        }
    }
    codegen::Configuration config;
    if (options_.verify_updates) {
        analysis::Report report;
        try {
            report =
                checker_.step(engine_.current(), engine_.topology(),
                              !link_delta);
        } catch (const std::exception& e) {
            engine_.restore(saved);
            checker_ = checker_backup;
            return refuse(std::move(resp), Refusal::verify, e.what(), stream,
                          start);
        }
        if (analysis::has_errors(report)) {
            engine_.restore(saved);
            checker_ = checker_backup;
            return refuse(std::move(resp), Refusal::verify,
                          first_error(report), stream, start);
        }
        config = checker_.config();
    } else {
        (void)incremental_.update(engine_.current(), engine_.topology());
        config = incremental_.config();
    }

    if (crash_before) {
        engine_.restore(saved);
        checker_ = checker_backup;
        incremental_ = incremental_backup;
        ++stats_.crashes;
        return refuse(std::move(resp), Refusal::crash,
                      "injected crash before publish; last-good snapshot "
                      "recovered",
                      stream, start, /*stream_fault=*/false);
    }

    // Prepare: build the complete snapshot off the serving path...
    auto next = std::make_shared<Snapshot>();
    next->generation =
        serving_generation_.load(std::memory_order_relaxed) + 1;
    next->compilation = engine_.current();
    next->topology = engine_.topology();
    next->config = std::move(config);
    next->checksum = snapshot_fingerprint(*next);

    if (crash_between) {
        engine_.restore(saved);
        checker_ = checker_backup;
        incremental_ = incremental_backup;
        ++stats_.crashes;
        return refuse(std::move(resp), Refusal::crash,
                      "injected crash between prepare and commit; last-good "
                      "snapshot recovered",
                      stream, start, /*stream_fault=*/false);
    }

    // ... then commit with one pointer swap: readers see old-complete or
    // new-complete, never a blend.
    resp.generation = next->generation;
    publish_locked(std::move(next));
    ++stats_.accepted;
    failures_.erase(stream);
    resp.ok = true;
    resp.ms = ms_since(start);
    return resp;
}

Response Controller::reload_locked(const ir::Policy& policy, int stream,
                                   int step, Clock::time_point start) {
    Response resp;
    resp.kind = "reload";
    if (quarantined_.contains(stream))
        return refuse(std::move(resp), Refusal::quarantined,
                      "stream " + std::to_string(stream) + " is quarantined",
                      stream, start, /*stream_fault=*/false);

    int timeout_attempts = 0;
    bool crash_before = false;
    bool crash_between = false;
    for (const Fault_event& event : faults_.at(step)) {
        switch (event.kind) {
            case Fault_kind::solver_timeout:
                timeout_attempts = std::max(timeout_attempts, event.count);
                break;
            case Fault_kind::crash_before_publish:
                crash_before = true;
                break;
            case Fault_kind::crash_between_prepare_and_commit:
                crash_between = true;
                break;
            default:
                break;
        }
    }

    const analysis::Update_checker checker_backup = checker_;
    const codegen::Incremental incremental_backup = incremental_;
    // Blue/green: the replacement compiles into a fresh engine (inheriting
    // the serving topology, link failures included) while the blue engine
    // keeps serving; nothing below mutates `engine_` until commit.
    std::optional<core::Engine> green;
    int attempt = 0;
    for (;;) {
        ++attempt;
        resp.attempts = attempt;
        core::Compile_options copts = compile_options_;
        if (attempt <= timeout_attempts) {
            copts.mip.max_nodes = 1;
        } else if (attempt > 1) {
            long long budget = std::max(compile_options_.mip.max_nodes, 1);
            for (int i = 1; i < attempt; ++i)
                budget = std::min<long long>(
                    budget * options_.retry_node_limit_factor, 1000000000LL);
            copts.mip.max_nodes = static_cast<int>(budget);
        }
        green.reset();
        try {
            green.emplace(policy, engine_.topology(), copts);
        } catch (const std::exception& e) {
            return refuse(std::move(resp), Refusal::argument, e.what(),
                          stream, start);
        }
        const bool injected_timeout = attempt <= timeout_attempts;
        if (green->current().feasible && !injected_timeout) break;
        const core::Provision_result& prov = green->current().provision;
        const bool transient =
            injected_timeout || (std::strcmp(prov.solver, "none") != 0 &&
                                 !prov.proven_infeasible);
        if (transient && attempt <= options_.max_retries) {
            ++stats_.retries;
            sleep_for(backoff_delay(attempt));
            continue;
        }
        return refuse(std::move(resp),
                      transient ? Refusal::timeout : Refusal::infeasible,
                      injected_timeout ? "injected solver timeout"
                                       : green->current().diagnostic,
                      stream, start);
    }

    if (options_.lint_policies) {
        const analysis::Report report =
            analysis::lint_policy(green->policy(), green->topology());
        if (analysis::has_errors(report))
            return refuse(std::move(resp), Refusal::lint, first_error(report),
                          stream, start);
    }
    codegen::Configuration config;
    if (options_.verify_updates) {
        // The checker proves the two-phase transition from the serving
        // tables to the green tables — blue/green cutover is per-packet
        // consistent, not just eventually correct.
        analysis::Report report;
        try {
            report = checker_.step(green->current(), green->topology(), true);
        } catch (const std::exception& e) {
            checker_ = checker_backup;
            return refuse(std::move(resp), Refusal::verify, e.what(), stream,
                          start);
        }
        if (analysis::has_errors(report)) {
            checker_ = checker_backup;
            return refuse(std::move(resp), Refusal::verify,
                          first_error(report), stream, start);
        }
        config = checker_.config();
    } else {
        (void)incremental_.update(green->current(), green->topology());
        config = incremental_.config();
    }

    if (crash_before) {
        checker_ = checker_backup;
        incremental_ = incremental_backup;
        ++stats_.crashes;
        return refuse(std::move(resp), Refusal::crash,
                      "injected crash before publish; green engine discarded",
                      stream, start, /*stream_fault=*/false);
    }
    auto next = std::make_shared<Snapshot>();
    next->generation =
        serving_generation_.load(std::memory_order_relaxed) + 1;
    next->compilation = green->current();
    next->topology = green->topology();
    next->config = std::move(config);
    next->checksum = snapshot_fingerprint(*next);
    if (crash_between) {
        checker_ = checker_backup;
        incremental_ = incremental_backup;
        ++stats_.crashes;
        return refuse(std::move(resp), Refusal::crash,
                      "injected crash between prepare and commit; green "
                      "engine discarded",
                      stream, start, /*stream_fault=*/false);
    }

    engine_ = std::move(*green);
    resp.generation = next->generation;
    publish_locked(std::move(next));
    ++stats_.accepted;
    ++stats_.reloads;
    failures_.erase(stream);
    resp.ok = true;
    resp.drained = drain_locked(options_.reload_drain_timeout);
    resp.ms = ms_since(start);
    return resp;
}

Response Controller::refuse(Response response, Refusal code,
                            std::string reason, int stream,
                            Clock::time_point start, bool stream_fault) {
    response.ok = false;
    response.code = code;
    response.detail = std::move(reason);
    response.generation = serving_generation_.load(std::memory_order_relaxed);
    response.ms = ms_since(start);
    ++stats_.refused;
    if (stream_fault && options_.quarantine_after > 0) {
        const int failures = ++failures_[stream];
        if (failures >= options_.quarantine_after &&
            !quarantined_.contains(stream)) {
            quarantined_.insert(stream);
            ++stats_.quarantines;
            response.detail += " [stream " + std::to_string(stream) +
                               " quarantined after " +
                               std::to_string(failures) +
                               " consecutive refusals]";
        }
    }
    return response;
}

void Controller::publish_locked(std::shared_ptr<Snapshot> next) {
    const std::uint64_t generation = next->generation;
    const std::shared_ptr<const Snapshot> old =
        slot_.load(std::memory_order_relaxed);
    if (old) retired_.push_back(old);
    slot_.store(std::shared_ptr<const Snapshot>(std::move(next)),
                std::memory_order_release);
    serving_generation_.store(generation, std::memory_order_release);
    std::erase_if(retired_, [](const std::weak_ptr<const Snapshot>& w) {
        return w.expired();
    });
}

bool Controller::drain(std::chrono::milliseconds timeout) {
    std::lock_guard<std::mutex> lock(mutex_);
    return drain_locked(timeout);
}

bool Controller::drain_locked(std::chrono::milliseconds timeout) {
    const Clock::time_point deadline = Clock::now() + timeout;
    for (;;) {
        std::erase_if(retired_, [](const std::weak_ptr<const Snapshot>& w) {
            return w.expired();
        });
        if (retired_.empty()) return true;
        if (Clock::now() >= deadline) return false;
        sleep_for(std::chrono::milliseconds(1));
    }
}

void Controller::set_fault_plan(Fault_plan plan) {
    std::lock_guard<std::mutex> lock(mutex_);
    faults_ = std::move(plan);
    command_step_ = 0;
}

bool Controller::quarantined(int stream) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return quarantined_.contains(stream);
}

void Controller::release(int stream) {
    std::lock_guard<std::mutex> lock(mutex_);
    quarantined_.erase(stream);
    failures_.erase(stream);
}

Daemon_stats Controller::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void Controller::sleep_for(std::chrono::milliseconds delay) {
    if (delay.count() <= 0) return;
    if (options_.sleeper)
        options_.sleeper(delay);
    else
        std::this_thread::sleep_for(delay);
}

std::uint64_t Controller::next_jitter() {
    jitter_state_ += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = jitter_state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::chrono::milliseconds Controller::backoff_delay(int attempt) {
    const long long base = std::max<long long>(options_.backoff_base.count(), 0);
    const long long cap = std::max<long long>(options_.backoff_cap.count(), base);
    long long delay = base;
    for (int i = 1; i < attempt && delay < cap; ++i) delay *= 2;
    delay = std::min(delay, cap);
    // Full-jitter tail: up to one base interval on top, so retry bursts
    // from independent streams decorrelate.
    const long long jitter =
        base > 0 ? static_cast<long long>(
                       next_jitter() % static_cast<std::uint64_t>(base + 1))
                 : 0;
    return std::chrono::milliseconds(std::min(delay + jitter, cap));
}

}  // namespace merlin::daemon
