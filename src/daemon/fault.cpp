#include "daemon/fault.h"

#include <algorithm>

#include "util/error.h"

namespace merlin::daemon {

namespace {

// Fixed-increment splitmix64: the deterministic bit source for corruption
// choices (the plan must replay identically from a repro file).
std::uint64_t splitmix(std::uint64_t& state) {
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

}  // namespace

const char* to_string(Fault_kind kind) {
    switch (kind) {
        case Fault_kind::crash_before_publish:
            return "crash-before-publish";
        case Fault_kind::crash_between_prepare_and_commit:
            return "crash-between-prepare-and-commit";
        case Fault_kind::solver_timeout:
            return "solver-timeout";
        case Fault_kind::corrupt_line:
            return "corrupt-line";
        case Fault_kind::duplicate_line:
            return "duplicate-line";
        case Fault_kind::reorder_lines:
            return "reorder-lines";
    }
    return "?";
}

std::optional<Fault_kind> parse_fault_kind(const std::string& name) {
    for (const Fault_kind kind :
         {Fault_kind::crash_before_publish,
          Fault_kind::crash_between_prepare_and_commit,
          Fault_kind::solver_timeout, Fault_kind::corrupt_line,
          Fault_kind::duplicate_line, Fault_kind::reorder_lines})
        if (name == to_string(kind)) return kind;
    return std::nullopt;
}

bool is_stream_fault(Fault_kind kind) {
    return kind == Fault_kind::corrupt_line ||
           kind == Fault_kind::duplicate_line ||
           kind == Fault_kind::reorder_lines;
}

std::vector<Fault_event> Fault_plan::at(int step) const {
    std::vector<Fault_event> hits;
    for (const Fault_event& event : events_)
        if (event.step == step) hits.push_back(event);
    return hits;
}

bool Fault_plan::has_stream_faults() const {
    return std::any_of(events_.begin(), events_.end(), [](const Fault_event& e) {
        return is_stream_fault(e.kind);
    });
}

Fault_plan parse_fault_plan(const std::string& text) {
    Fault_plan plan;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t end = text.find(',', pos);
        if (end == std::string::npos) end = text.size();
        const std::string item = text.substr(pos, end - pos);
        pos = end + 1;
        if (item.empty()) continue;
        const std::size_t at = item.find('@');
        if (at == std::string::npos)
            throw Error("malformed fault (expected <kind>@<step>[x<count>]): " +
                        item);
        const auto kind = parse_fault_kind(item.substr(0, at));
        if (!kind) throw Error("unknown fault kind: " + item.substr(0, at));
        Fault_event event;
        event.kind = *kind;
        std::string rest = item.substr(at + 1);
        int count = 1;
        if (const std::size_t x = rest.find('x'); x != std::string::npos) {
            try {
                count = std::stoi(rest.substr(x + 1));
            } catch (...) {
                throw Error("malformed fault count: " + item);
            }
            rest.resize(x);
        }
        try {
            event.step = std::stoi(rest);
        } catch (...) {
            throw Error("malformed fault step: " + item);
        }
        if (event.step < 0 || count < 1)
            throw Error("fault step/count out of range: " + item);
        event.count = count;
        plan.add(event);
    }
    return plan;
}

std::string format_fault_plan(const Fault_plan& plan) {
    std::string out;
    for (const Fault_event& event : plan.events()) {
        if (!out.empty()) out += ',';
        out += to_string(event.kind);
        out += '@';
        out += std::to_string(event.step);
        if (event.count != 1) out += 'x' + std::to_string(event.count);
    }
    return out;
}

std::string corrupt_control_line(const std::string& line,
                                 std::uint64_t seed) {
    std::uint64_t state = seed * 0x2545f4914f6cdd1dull + 0x9e3779b9ull;
    std::string out = line;
    switch (splitmix(state) % 3) {
        case 0: {  // clobber one character with protocol noise
            if (out.empty()) return "\x7f?";
            const std::size_t i = splitmix(state) % out.size();
            const char noise[] = {'\x7f', '~', '@', '\\'};
            out[i] = noise[splitmix(state) % 4];
            if (out == line) out[i] = out[i] == '~' ? '@' : '~';
            return out;
        }
        case 1:  // truncate mid-command
            out.resize(out.size() / 2);
            return out + "\x7f";
        default:  // prepend a garbage token
            return "?garbled? " + out;
    }
}

std::vector<std::string> apply_stream_faults(
    const std::vector<std::string>& lines, const Fault_plan& plan,
    std::uint64_t seed) {
    // Per original line: corrupt, then duplicate the (possibly corrupted)
    // text — each original index expands to a block of delivered lines.
    std::vector<std::vector<std::string>> blocks(lines.size());
    for (std::size_t i = 0; i < lines.size(); ++i) {
        std::string text = lines[i];
        bool duplicate = false;
        for (const Fault_event& event : plan.at(static_cast<int>(i))) {
            if (event.kind == Fault_kind::corrupt_line)
                text = corrupt_control_line(text, seed ^ (i * 0x9e37ull));
            else if (event.kind == Fault_kind::duplicate_line)
                duplicate = true;
        }
        blocks[i].push_back(text);
        if (duplicate) blocks[i].push_back(blocks[i].front());
    }
    // Reorder swaps whole blocks with their successor (steps index the
    // original sequence; the last line has no successor, so a reorder
    // anchored there is a no-op).
    for (const Fault_event& event : plan.events()) {
        if (event.kind != Fault_kind::reorder_lines) continue;
        const auto i = static_cast<std::size_t>(event.step);
        if (i + 1 < blocks.size()) std::swap(blocks[i], blocks[i + 1]);
    }
    std::vector<std::string> out;
    for (std::vector<std::string>& block : blocks)
        for (std::string& text : block) out.push_back(std::move(text));
    return out;
}

Fault_plan random_fault_plan(Rng& rng, int steps, int max_events) {
    Fault_plan plan;
    if (steps <= 0 || max_events <= 0) return plan;
    const Fault_kind kinds[] = {
        Fault_kind::crash_before_publish,
        Fault_kind::crash_between_prepare_and_commit,
        Fault_kind::solver_timeout,
        Fault_kind::corrupt_line,
        Fault_kind::duplicate_line,
        Fault_kind::reorder_lines,
    };
    const int events = static_cast<int>(rng.uniform(0, max_events));
    for (int i = 0; i < events; ++i) {
        Fault_event event;
        event.kind = kinds[rng.uniform(0, 5)];
        event.step = static_cast<int>(rng.uniform(0, steps - 1));
        if (event.kind == Fault_kind::solver_timeout)
            event.count = static_cast<int>(rng.uniform(1, 3));
        plan.add(event);
    }
    return plan;
}

}  // namespace merlin::daemon
