// Deterministic fault injection for the control-plane daemon.
//
// A Fault_plan is a schedule of injected failures, each anchored to a
// control-command *step* (the 0-based index of the command in the stream).
// Two families exist:
//
//   * controller faults — consumed by daemon::Controller inside its
//     transaction protocol: `crash_before_publish` and
//     `crash_between_prepare_and_commit` tear the transaction down at the
//     two publication points (the daemon must recover to the last-good
//     snapshot with an unchanged generation), `solver_timeout` clamps the
//     branch & bound node budget to 1 for the first `count` attempts of
//     that command (exercising the transient-failure retry path);
//
//   * stream faults — applied to the control-line sequence *before* it
//     reaches the controller: `corrupt_line` mangles the line text,
//     `duplicate_line` delivers it twice, `reorder_lines` swaps it with
//     its successor. They model a lossy/duplicating control channel; the
//     daemon must refuse what no longer parses and stay consistent under
//     replays and reorderings.
//
// Plans serialize to a compact CLI form ("<kind>@<step>[x<count>]",
// comma-separated) and to per-event repro lines ("fault <step> <kind>
// [<count>]") embedded in merlin-fuzz scenario files; both round-trip.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/rng.h"

namespace merlin::daemon {

enum class Fault_kind : std::uint8_t {
    crash_before_publish,
    crash_between_prepare_and_commit,
    solver_timeout,
    corrupt_line,
    duplicate_line,
    reorder_lines,
};

[[nodiscard]] const char* to_string(Fault_kind kind);
// Kebab-case name -> kind ("crash-before-publish", ...).
[[nodiscard]] std::optional<Fault_kind> parse_fault_kind(
    const std::string& name);
// True for the faults applied to the line stream rather than consumed by
// the controller's transaction protocol.
[[nodiscard]] bool is_stream_fault(Fault_kind kind);

struct Fault_event {
    Fault_kind kind = Fault_kind::solver_timeout;
    int step = 0;   // 0-based control-command index the fault fires at
    int count = 1;  // solver_timeout: attempts that keep timing out

    friend bool operator==(const Fault_event&, const Fault_event&) = default;
};

class Fault_plan {
public:
    Fault_plan() = default;
    explicit Fault_plan(std::vector<Fault_event> events)
        : events_(std::move(events)) {}

    [[nodiscard]] bool empty() const { return events_.empty(); }
    [[nodiscard]] const std::vector<Fault_event>& events() const {
        return events_;
    }
    void add(Fault_event event) { events_.push_back(event); }
    // Events anchored at `step`, in plan order.
    [[nodiscard]] std::vector<Fault_event> at(int step) const;
    [[nodiscard]] bool has_stream_faults() const;

    friend bool operator==(const Fault_plan&, const Fault_plan&) = default;

private:
    std::vector<Fault_event> events_;
};

// CLI form: comma-separated "<kind>@<step>" or "<kind>@<step>x<count>".
// Throws merlin::Error on malformed input; parse(format(p)) == p.
[[nodiscard]] Fault_plan parse_fault_plan(const std::string& text);
[[nodiscard]] std::string format_fault_plan(const Fault_plan& plan);

// Deterministic mangle of one control line (seeded): the result is stable
// across runs, almost never parses, and never equals the input.
[[nodiscard]] std::string corrupt_control_line(const std::string& line,
                                               std::uint64_t seed);

// Applies the plan's stream faults to an ordered control-line sequence;
// controller faults pass through untouched. Steps index the *original*
// sequence; per line, corruption applies first, then duplication (of the
// corrupted text), then reordering (swap with the next surviving line's
// expansion).
[[nodiscard]] std::vector<std::string> apply_stream_faults(
    const std::vector<std::string>& lines, const Fault_plan& plan,
    std::uint64_t seed);

// Draws up to `max_events` faults over `steps` command slots (any kind,
// uniform step); used by merlin-fuzz --daemon-faults. Deterministic in the
// Rng state.
[[nodiscard]] Fault_plan random_fault_plan(Rng& rng, int steps,
                                           int max_events);

}  // namespace merlin::daemon
