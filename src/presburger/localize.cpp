#include "presburger/localize.h"

#include <algorithm>

#include "util/error.h"

namespace merlin::presburger {

std::vector<Bandwidth> equal_split(const std::vector<std::string>& ids,
                                   Bandwidth total) {
    const auto n = static_cast<std::uint64_t>(ids.size());
    std::vector<Bandwidth> out;
    out.reserve(ids.size());
    const std::uint64_t share = total.bps() / n;
    std::uint64_t remainder = total.bps() % n;
    for (std::size_t i = 0; i < ids.size(); ++i) {
        out.emplace_back(share + (remainder > 0 ? 1 : 0));
        if (remainder > 0) --remainder;
    }
    return out;
}

namespace {

ir::FormulaPtr localize_leaf(const ir::Formula& f, const Split_fn& split) {
    const bool is_max = f.kind == ir::Formula_kind::max;
    if (f.term.ids.empty())
        throw Policy_error("bandwidth term has no identifiers: " +
                           ir::to_string(f.term));
    // Fold the constant contribution into the rate.
    Bandwidth rate = f.rate;
    if (f.term.constant != 0) {
        if (Bandwidth(f.term.constant) > rate && is_max)
            throw Policy_error(
                "constant term already exceeds the cap in max(" +
                ir::to_string(f.term) + ", " + to_string(f.rate) + ")");
        rate = is_max ? rate - Bandwidth(f.term.constant)
                      : rate - std::min(Bandwidth(f.term.constant), rate);
    }
    if (f.term.ids.size() == 1) {
        ir::Term t;
        t.ids = f.term.ids;
        return is_max ? ir::formula_max(std::move(t), rate)
                      : ir::formula_min(std::move(t), rate);
    }
    const std::vector<Bandwidth> shares = split(f.term.ids, rate);
    expects(shares.size() == f.term.ids.size(),
            "split function returned wrong arity");
    ir::FormulaPtr acc;
    for (std::size_t i = 0; i < f.term.ids.size(); ++i) {
        ir::Term t;
        t.ids.push_back(f.term.ids[i]);
        ir::FormulaPtr leaf = is_max ? ir::formula_max(std::move(t), shares[i])
                                     : ir::formula_min(std::move(t), shares[i]);
        acc = acc ? ir::formula_and(acc, leaf) : leaf;
    }
    return acc;
}

}  // namespace

ir::FormulaPtr localize(const ir::FormulaPtr& formula, const Split_fn& split) {
    if (!formula) return nullptr;
    switch (formula->kind) {
        case ir::Formula_kind::max:
        case ir::Formula_kind::min: return localize_leaf(*formula, split);
        case ir::Formula_kind::and_:
            return ir::formula_and(localize(formula->lhs, split),
                                   localize(formula->rhs, split));
        case ir::Formula_kind::or_:
            return ir::formula_or(localize(formula->lhs, split),
                                  localize(formula->rhs, split));
        case ir::Formula_kind::not_:
            return ir::formula_not(localize(formula->lhs, split));
    }
    throw Error("unreachable formula kind");
}

namespace {

void collect(const ir::FormulaPtr& f, Rate_table& out) {
    if (!f) return;
    switch (f->kind) {
        case ir::Formula_kind::and_:
            collect(f->lhs, out);
            collect(f->rhs, out);
            return;
        case ir::Formula_kind::or_:
            throw Policy_error(
                "cannot enforce a disjunctive bandwidth constraint "
                "statically: " +
                ir::to_string(f));
        case ir::Formula_kind::not_:
            throw Policy_error("cannot enforce a negated bandwidth constraint "
                               "statically: " +
                               ir::to_string(f));
        case ir::Formula_kind::max:
        case ir::Formula_kind::min: break;
    }
    if (f->term.ids.size() != 1 || f->term.constant != 0)
        throw Policy_error(
            "formula is not localized (multi-identifier term): " +
            ir::to_string(f));
    const std::string& id = f->term.ids.front();
    if (f->kind == ir::Formula_kind::max) {
        const auto it = out.caps.find(id);
        if (it == out.caps.end() || f->rate < it->second)
            out.caps[id] = f->rate;
    } else {
        const auto it = out.guarantees.find(id);
        if (it == out.guarantees.end() || f->rate > it->second)
            out.guarantees[id] = f->rate;
    }
}

}  // namespace

std::vector<Aggregate> terms(const ir::FormulaPtr& formula) {
    std::vector<Aggregate> out;
    const auto walk = [&](auto&& self, const ir::FormulaPtr& f) -> void {
        if (!f) return;
        switch (f->kind) {
            case ir::Formula_kind::and_:
                self(self, f->lhs);
                self(self, f->rhs);
                return;
            case ir::Formula_kind::or_:
            case ir::Formula_kind::not_:
                throw Policy_error(
                    "bandwidth verification requires a positive conjunctive "
                    "formula: " +
                    ir::to_string(f));
            case ir::Formula_kind::max:
            case ir::Formula_kind::min: {
                Aggregate term;
                term.is_max = f->kind == ir::Formula_kind::max;
                term.ids = f->term.ids;
                term.rate = f->rate - Bandwidth(f->term.constant);
                out.push_back(std::move(term));
                return;
            }
        }
        throw Error("unreachable formula kind");
    };
    walk(walk, formula);
    return out;
}

Rate_table requirements(const ir::FormulaPtr& formula) {
    Rate_table out;
    collect(formula, out);
    for (const auto& [id, guarantee] : out.guarantees) {
        const auto cap = out.caps.find(id);
        if (cap != out.caps.end() && guarantee > cap->second)
            throw Policy_error("statement '" + id + "' has guarantee " +
                               to_string(guarantee) + " above its cap " +
                               to_string(cap->second));
    }
    return out;
}

}  // namespace merlin::presburger
