// Bandwidth-formula processing (Sections 2.1 and 3.1).
//
// Merlin formulas are Presburger-arithmetic constraints over statement
// identifiers: max(e, n) caps, min(e, n) guarantees, combined with and/or/!.
// Aggregate constraints mention several identifiers (max(x + y, 50MB/s));
// enforcing them would require distributed state, so the compiler *localizes*
// the formula first: a term over n identifiers becomes n single-identifier
// terms that collectively imply the original. By default bandwidth is divided
// equally; other divisions are pluggable ("although other schemes are
// permissible"), and negotiators re-divide at run time (Section 4).
//
// The enforcement pipeline then consumes the localized formula as a table of
// per-statement guarantees and caps. Only *positive conjunctions* can be
// enforced by a static configuration; or/! are accepted by the language (and
// used in negotiator reasoning) but rejected here with a diagnostic.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ir/ast.h"

namespace merlin::presburger {

// Splits `total` across `ids`; must return one rate per id summing to at
// most `total` (for max) / at least `total` (for min). The default divides
// equally, giving the remainder to the first identifiers.
using Split_fn = std::function<std::vector<Bandwidth>(
    const std::vector<std::string>& ids, Bandwidth total)>;

[[nodiscard]] std::vector<Bandwidth> equal_split(
    const std::vector<std::string>& ids, Bandwidth total);

// Rewrites every multi-identifier max/min into a conjunction of local terms.
// A constant contribution in a term (max(x + 10MB/s, 50MB/s)) is subtracted
// from the rate before splitting. Single-id terms pass through unchanged.
// Returns null for null input.
[[nodiscard]] ir::FormulaPtr localize(const ir::FormulaPtr& formula,
                                      const Split_fn& split = equal_split);

// Per-statement rate table extracted from a localized formula.
struct Rate_table {
    std::map<std::string, Bandwidth> guarantees;  // from min()
    std::map<std::string, Bandwidth> caps;        // from max()

    [[nodiscard]] Bandwidth guarantee_of(const std::string& id) const {
        const auto it = guarantees.find(id);
        return it == guarantees.end() ? Bandwidth{} : it->second;
    }
    [[nodiscard]] bool has_cap(const std::string& id) const {
        return caps.contains(id);
    }
};

// Extracts guarantees/caps from a formula that must be a conjunction of
// single-identifier max/min terms (i.e. already localized). Multiple terms
// on one id keep the tightest bound. Throws Policy_error on or/!, on
// multi-identifier terms, and on a min exceeding a max for the same id.
[[nodiscard]] Rate_table requirements(const ir::FormulaPtr& formula);

// A raw constraint term, before localization: kind, the identifiers the
// term ranges over, and its rate (constants already folded into the rate).
struct Aggregate {
    bool is_max = false;  // false: min (guarantee)
    std::vector<std::string> ids;
    Bandwidth rate;
};

// Flattens a positive conjunction into its constraint terms without
// splitting aggregates — the form the negotiator's bandwidth verification
// needs ("the sum of the new allocations must not exceed the original
// allocation" is a per-*term* condition, Section 4.1). Throws Policy_error
// on or/!. Returns an empty list for a null formula.
[[nodiscard]] std::vector<Aggregate> terms(const ir::FormulaPtr& formula);

}  // namespace merlin::presburger
