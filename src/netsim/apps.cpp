#include "netsim/apps.h"

#include <algorithm>

#include "util/error.h"

namespace merlin::netsim {

void Transfer_tracker::add(Flow_spec spec, double bytes) {
    const FlowId id = sim_.add_flow(std::move(spec));
    transfers_.push_back(Transfer{id, bytes});
    ++remaining_count_;
}

void Transfer_tracker::update() {
    for (Transfer& t : transfers_) {
        if (t.finished) continue;
        if (sim_.delivered_bytes(t.flow) >= t.bytes) {
            t.finished = true;
            sim_.remove_flow(t.flow);
            --remaining_count_;
        }
    }
}

Hadoop_job::Hadoop_job(Simulator& sim, Config config)
    : sim_(sim), config_(std::move(config)) {
    expects(config_.workers.size() >= 2, "Hadoop job needs >= 2 workers");
}

const char* Hadoop_job::phase_name() const {
    switch (phase_) {
        case Phase::map: return "map";
        case Phase::shuffle: return "shuffle";
        case Phase::reduce: return "reduce";
        case Phase::finished: return "finished";
    }
    return "?";
}

void Hadoop_job::update(double dt) {
    if (phase_ == Phase::finished) return;
    elapsed_ += dt;
    phase_clock_ += dt;
    switch (phase_) {
        case Phase::map:
            if (phase_clock_ >= config_.map_seconds) {
                phase_ = Phase::shuffle;
                phase_clock_ = 0;
                shuffle_.emplace(sim_);
                for (topo::NodeId a : config_.workers) {
                    for (topo::NodeId b : config_.workers) {
                        if (a == b) continue;
                        Flow_spec spec;
                        spec.name = "shuffle";
                        spec.src = a;
                        spec.dst = b;
                        spec.guarantee = config_.guarantee;
                        spec.cap = config_.cap;
                        shuffle_->add(std::move(spec),
                                      config_.shuffle_bytes_per_pair);
                    }
                }
            }
            break;
        case Phase::shuffle:
            shuffle_->update();
            if (shuffle_->done()) {
                phase_ = Phase::reduce;
                phase_clock_ = 0;
            }
            break;
        case Phase::reduce:
            if (phase_clock_ >= config_.reduce_seconds)
                phase_ = Phase::finished;
            break;
        case Phase::finished: break;
    }
}

void Tcp_source::update(double dt) {
    const Bandwidth achieved = sim_.rate(flow_);
    // Congestion signal: the network gave us meaningfully less than asked.
    if (achieved.bps() + achieved.bps() / 50 < demand_.bps()) {
        demand_ = Bandwidth(static_cast<std::uint64_t>(
            static_cast<double>(demand_.bps()) * decrease_));
    } else {
        demand_ += Bandwidth(static_cast<std::uint64_t>(
            static_cast<double>(increase_.bps()) * dt));
    }
    if (demand_.bps() < 1'000'000) demand_ = mbps(1);  // floor: 1 Mbps
    sim_.set_demand(flow_, demand_);
}

Ring_service::Ring_service(Simulator& sim, Config config)
    : sim_(sim), config_(std::move(config)) {
    expects(config_.ring.size() >= 2, "ring needs >= 2 processes");
    for (std::size_t i = 0; i < config_.ring.size(); ++i) {
        Flow_spec spec;
        spec.name = config_.name + "/hop" + std::to_string(i);
        spec.src = config_.ring[i];
        spec.dst = config_.ring[(i + 1) % config_.ring.size()];
        spec.demand = Bandwidth{};  // no clients yet
        spec.guarantee = config_.guarantee;
        spec.cap = config_.cap;
        hops_.push_back(sim_.add_flow(std::move(spec)));
    }
}

void Ring_service::set_clients(int clients) {
    clients_ = clients;
    const Bandwidth offered(
        config_.per_client.bps() *
        static_cast<std::uint64_t>(std::max(clients, 0)));
    for (FlowId hop : hops_) sim_.set_demand(hop, offered);
}

Bandwidth Ring_service::throughput() const {
    Bandwidth slowest = kUnlimited;
    for (FlowId hop : hops_)
        slowest = std::min(slowest, sim_.rate(hop));
    return slowest;
}

}  // namespace merlin::netsim
