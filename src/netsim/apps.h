// Application models driving the simulator (Section 6.2).
//
//  * Transfer_tracker — fixed-size data transfers (completion detection).
//  * Hadoop_job       — map / shuffle / reduce with an all-to-all shuffle,
//                       the workload of the paper's Hadoop sort experiment.
//  * Ring_service     — a Ring Paxos replication service: ordered traffic
//                       circulates a ring of processes; service throughput
//                       is the minimum rate over the ring's hops, driven by
//                       aggregate client demand.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "netsim/sim.h"

namespace merlin::netsim {

// Tracks a set of fixed-size transfers; flows are removed as they finish.
class Transfer_tracker {
public:
    explicit Transfer_tracker(Simulator& sim) : sim_(sim) {}

    void add(Flow_spec spec, double bytes);

    // Must be called after every sim.step(); removes finished flows.
    void update();
    [[nodiscard]] bool done() const { return remaining_count_ == 0; }
    [[nodiscard]] int remaining() const { return remaining_count_; }

private:
    struct Transfer {
        FlowId flow;
        double bytes;
        bool finished = false;
    };
    Simulator& sim_;
    std::vector<Transfer> transfers_;
    int remaining_count_ = 0;
};

// A MapReduce job: map (compute only), shuffle (every worker sends
// bytes_per_pair to every other worker), reduce (compute only).
class Hadoop_job {
public:
    struct Config {
        std::vector<topo::NodeId> workers;
        double map_seconds = 60;
        double reduce_seconds = 60;
        double shuffle_bytes_per_pair = 0;
        // QoS applied to every shuffle flow (from the Merlin policy).
        Bandwidth guarantee;
        std::optional<Bandwidth> cap;
    };

    Hadoop_job(Simulator& sim, Config config);

    // Advances job state; call once per sim.step(dt).
    void update(double dt);
    [[nodiscard]] bool done() const { return phase_ == Phase::finished; }
    [[nodiscard]] double elapsed() const { return elapsed_; }
    [[nodiscard]] const char* phase_name() const;

private:
    enum class Phase { map, shuffle, reduce, finished };

    Simulator& sim_;
    Config config_;
    Phase phase_ = Phase::map;
    double phase_clock_ = 0;
    double elapsed_ = 0;
    std::optional<Transfer_tracker> shuffle_;
};

// A TCP-like adaptive source: adjusts its flow's offered demand by
// additive-increase / multiplicative-decrease using the allocation as
// congestion feedback (got less than asked -> back off). Drives a single
// Simulator flow; call update() once per sim.step().
class Tcp_source {
public:
    Tcp_source(Simulator& sim, FlowId flow,
               Bandwidth increase_per_second = mbps(20),
               double decrease_factor = 0.5)
        : sim_(sim),
          flow_(flow),
          increase_(increase_per_second),
          decrease_(decrease_factor),
          demand_(increase_per_second) {
        sim_.set_demand(flow_, demand_);
    }

    void update(double dt);
    [[nodiscard]] Bandwidth demand() const { return demand_; }

private:
    Simulator& sim_;
    FlowId flow_;
    Bandwidth increase_;
    double decrease_;
    Bandwidth demand_;
};

// One Ring Paxos replication service (Section 6.2, Figure 5): processes
// arranged in a ring, one greedy flow per hop; adding clients raises the
// offered load. Throughput = min hop rate, capped by the offered load.
class Ring_service {
public:
    struct Config {
        std::string name;
        std::vector<topo::NodeId> ring;  // process hosts, in ring order
        Bandwidth per_client;            // offered load added per client
        Bandwidth guarantee;             // per-hop guarantee (from Merlin)
        std::optional<Bandwidth> cap;
    };

    Ring_service(Simulator& sim, Config config);

    void set_clients(int clients);
    [[nodiscard]] int clients() const { return clients_; }
    // Current service throughput (after sim.step()).
    [[nodiscard]] Bandwidth throughput() const;

private:
    Simulator& sim_;
    Config config_;
    std::vector<FlowId> hops_;
    int clients_ = 0;
};

}  // namespace merlin::netsim
