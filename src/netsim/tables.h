// A per-packet rule-table router over abstract flow tables.
//
// The flow simulator (sim.h) answers "what rate does each flow get"; this
// answers the orthogonal question two-phase updates hinge on: "which exact
// hops does one packet take under *this* rule table" — including a mixed
// table captured between update phases. netsim depends only on topo, so
// rules are expressed abstractly: codegen predicates become opaque
// traffic-class integers (the caller assigns them), VLAN tags and
// destination addresses stay concrete. The testgen diff oracle converts a
// codegen::Configuration into a Rule_network per update phase and asserts
// every in-flight packet either completes on the old path or the new one —
// never a blend, never a blackhole.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "topo/topology.h"

namespace merlin::netsim {

// Traffic-class sentinels for Table_rule::match_class.
inline constexpr int kMatchAny = -1;      // predicate wildcard
inline constexpr int kMatchNothing = -2;  // predicate no packet carries

// One abstract flow-table entry (the shape of codegen::Flow_rule with the
// predicate replaced by a class id). Highest priority wins; equal-priority
// rules that both match but act differently make the table ambiguous,
// which route() reports as a failure.
struct Table_rule {
    int priority = 0;
    int match_class = kMatchAny;       // traffic class, or a sentinel
    int match_tag = -1;                // VLAN tag, -1 = wildcard
    std::uint64_t match_dst = 0;       // dst mac, 0 = wildcard
    bool drop = false;
    int set_tag = -1;                  // -1 = leave unchanged
    bool strip_tag = false;
    std::string out_port;              // neighbour name; empty with drop
};

struct Packet {
    int traffic_class = kMatchNothing;
    std::uint64_t dst = 0;   // destination mac
    int tag = -1;            // VLAN tag; -1 = untagged
};

struct Table_trace {
    bool delivered = false;
    std::string verdict;                  // why not, when !delivered
    std::vector<std::string> path;        // device names visited, in order
};

class Rule_network {
public:
    explicit Rule_network(const topo::Topology& topo);

    void add_rule(const std::string& device, Table_rule rule);
    // A middlebox Click forward: packets entering `device` carrying
    // `match_tag` leave toward `out_port` carrying `set_tag`.
    void add_click_forward(const std::string& device, int match_tag,
                           int set_tag, const std::string& out_port);
    // Registering a host's mac lets route() flag misdelivery (a packet
    // handed to a host whose address is not the packet's destination).
    void set_host_mac(const std::string& host, std::uint64_t mac);

    // Routes one packet injected at `ingress` (a switch) until it is
    // delivered to the host with mac `packet.dst`, dropped, or fails.
    // Failures name their cause: no matching rule (blackhole), ambiguous
    // table, forwarding over a failed or absent link, a middlebox with no
    // deterministic way out, or a forwarding loop (TTL exhausted).
    // `drop` counts as non-delivery with verdict "dropped".
    [[nodiscard]] Table_trace route(const std::string& ingress,
                                    Packet packet) const;

private:
    const topo::Topology& topo_;
    std::map<std::string, std::vector<Table_rule>> tables_;
    struct Click_forward {
        int match_tag = -1;
        int set_tag = -1;
        std::string out_port;
    };
    std::map<std::string, std::vector<Click_forward>> clicks_;
    std::map<std::string, std::uint64_t> host_macs_;
};

}  // namespace merlin::netsim
