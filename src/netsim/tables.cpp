#include "netsim/tables.h"

#include <algorithm>

#include "util/error.h"

namespace merlin::netsim {

Rule_network::Rule_network(const topo::Topology& topo) : topo_(topo) {}

void Rule_network::add_rule(const std::string& device, Table_rule rule) {
    tables_[device].push_back(std::move(rule));
}

void Rule_network::add_click_forward(const std::string& device, int match_tag,
                                     int set_tag,
                                     const std::string& out_port) {
    clicks_[device].push_back(Click_forward{match_tag, set_tag, out_port});
}

void Rule_network::set_host_mac(const std::string& host, std::uint64_t mac) {
    host_macs_[host] = mac;
}

Table_trace Rule_network::route(const std::string& ingress,
                                Packet packet) const {
    Table_trace trace;
    const auto fail = [&](std::string verdict) {
        trace.delivered = false;
        trace.verdict = std::move(verdict);
        return trace;
    };

    std::string device = ingress;
    std::string prev;  // where the packet came from ("" at the ingress)
    // Generous bound: a legal route visits no device more often than the
    // segment structure allows; running past this is a forwarding loop.
    for (int ttl = 4 * topo_.node_count() + 8; ttl > 0; --ttl) {
        trace.path.push_back(device);
        const auto node_id = topo_.find(device);
        if (!node_id) return fail("unknown device '" + device + "'");
        const topo::Node_kind kind = topo_.node(*node_id).kind;

        if (kind == topo::Node_kind::host) {
            const auto mac = host_macs_.find(device);
            if (mac != host_macs_.end() && mac->second != packet.dst)
                return fail("misdelivered to host '" + device + "'");
            if (packet.tag != -1)
                return fail("delivered to '" + device +
                            "' with tag " + std::to_string(packet.tag) +
                            " not stripped");
            trace.delivered = true;
            return trace;
        }

        std::string next;
        if (kind == topo::Node_kind::middlebox) {
            // A Click forward keyed on the incoming tag is deterministic;
            // a function-only middlebox passes the packet through — back
            // over its single link, or out the other of two.
            const Click_forward* forward = nullptr;
            if (const auto it = clicks_.find(device); it != clicks_.end())
                for (const Click_forward& f : it->second)
                    if (f.match_tag == packet.tag) {
                        forward = &f;
                        break;
                    }
            if (forward != nullptr) {
                if (forward->set_tag != -1) packet.tag = forward->set_tag;
                next = forward->out_port;
            } else {
                std::vector<std::string> live;
                for (const auto& adj : topo_.neighbors(*node_id))
                    if (topo_.link_up(adj.link))
                        live.push_back(topo_.node(adj.node).name);
                if (live.size() == 1) {
                    next = live.front();
                } else if (live.size() == 2 &&
                           std::find(live.begin(), live.end(), prev) !=
                               live.end()) {
                    next = live.front() == prev ? live.back() : live.front();
                } else {
                    return fail("middlebox '" + device +
                                "' has no deterministic way out for tag " +
                                std::to_string(packet.tag));
                }
            }
        } else {
            const auto table = tables_.find(device);
            const Table_rule* best = nullptr;
            bool ambiguous = false;
            if (table != tables_.end()) {
                for (const Table_rule& rule : table->second) {
                    const bool matches =
                        (rule.match_class == kMatchAny ||
                         rule.match_class == packet.traffic_class) &&
                        (rule.match_tag == -1 ||
                         rule.match_tag == packet.tag) &&
                        (rule.match_dst == 0 ||
                         rule.match_dst == packet.dst);
                    if (!matches) continue;
                    if (best == nullptr || rule.priority > best->priority) {
                        best = &rule;
                        ambiguous = false;
                    } else if (rule.priority == best->priority &&
                               (rule.drop != best->drop ||
                                rule.set_tag != best->set_tag ||
                                rule.strip_tag != best->strip_tag ||
                                rule.out_port != best->out_port)) {
                        ambiguous = true;
                    }
                }
            }
            if (best == nullptr)
                return fail("no matching rule at '" + device +
                            "' for tag " + std::to_string(packet.tag) +
                            " (blackhole)");
            if (ambiguous)
                return fail("ambiguous table at '" + device +
                            "': equal-priority rules disagree");
            if (best->drop) return fail("dropped");
            if (best->set_tag != -1) packet.tag = best->set_tag;
            if (best->strip_tag) packet.tag = -1;
            if (best->out_port.empty())
                return fail("matching rule at '" + device +
                            "' has no action (blackhole)");
            next = best->out_port;
        }

        const auto next_id = topo_.find(next);
        if (!next_id)
            return fail("forward from '" + device + "' to unknown '" + next +
                        "'");
        const auto link = topo_.link_between(*node_id, *next_id);
        if (!link || !topo_.link_up(*link))
            return fail("forward from '" + device + "' to '" + next +
                        "' over a " + (link ? "failed" : "nonexistent") +
                        " link");
        prev = device;
        device = next;
    }
    return fail("forwarding loop (ttl exhausted)");
}

}  // namespace merlin::netsim
