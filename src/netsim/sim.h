// A flow-level network simulator.
//
// The paper's application experiments (Section 6.2: Hadoop sort under
// interference, Ring Paxos replication) ran on a hardware testbed enforcing
// Merlin's generated queue/tc configurations. This simulator substitutes for
// that testbed: flows traverse routes over the topology's links (full-duplex
// — capacity is per direction), and each step assigns every flow a rate by
// progressive filling:
//
//   1. every flow first receives its guaranteed rate (bounded by demand),
//   2. remaining capacity is shared max-min fairly,
//   3. caps and demands bound each flow individually.
//
// Guarantees therefore hold under congestion while spare capacity remains
// work-conserving — exactly the behaviour Merlin's switch queues and tc
// classes provide ("this guarantee does not come at the expense of
// utilization", Section 6.2).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "topo/topology.h"
#include "util/units.h"

namespace merlin::netsim {

// Demand value for greedy (TCP-like) flows that take whatever they can get.
inline constexpr Bandwidth kUnlimited =
    Bandwidth(std::uint64_t{1} << 62);

struct Flow_spec {
    std::string name;
    topo::NodeId src = topo::kNoNode;
    topo::NodeId dst = topo::kNoNode;
    // Node route from src to dst; empty = shortest path (BFS).
    std::vector<topo::NodeId> route;
    Bandwidth demand = kUnlimited;
    Bandwidth guarantee;                 // min rate under congestion
    std::optional<Bandwidth> cap;        // max rate
};

using FlowId = int;

class Simulator {
public:
    explicit Simulator(const topo::Topology& topo);

    // Adds a flow; throws Topology_error when no route exists.
    FlowId add_flow(Flow_spec spec);
    void remove_flow(FlowId id);
    void set_demand(FlowId id, Bandwidth demand);

    // Recomputes allocations and advances time by dt seconds.
    void step(double dt_seconds);

    [[nodiscard]] Bandwidth rate(FlowId id) const;
    [[nodiscard]] double delivered_bytes(FlowId id) const;
    [[nodiscard]] double now() const { return now_; }
    [[nodiscard]] const std::vector<topo::NodeId>& route(FlowId id) const;

private:
    struct Flow {
        Flow_spec spec;
        std::vector<int> channels;  // directed link slots the route crosses
        Bandwidth rate;
        double delivered_bytes = 0;
        bool alive = true;
    };

    void allocate();

    const topo::Topology& topo_;
    std::vector<Flow> flows_;
    // Directed capacity per link: channel 2*link (a->b) and 2*link+1 (b->a).
    std::vector<std::uint64_t> channel_capacity_;
    double now_ = 0;
    bool dirty_ = true;  // flow set/demands changed since last allocate()
};

// The allocation core, exposed for direct testing: given per-flow channel
// sets, guarantees/caps/demands (bps), and channel capacities (bps), returns
// max-min rates with guarantees honoured first. If guarantees oversubscribe
// a channel they are scaled down proportionally on it.
[[nodiscard]] std::vector<std::uint64_t> progressive_fill(
    const std::vector<std::vector<int>>& flow_channels,
    const std::vector<std::uint64_t>& guarantee,
    const std::vector<std::uint64_t>& limit,  // min(demand, cap) per flow
    const std::vector<std::uint64_t>& channel_capacity);

}  // namespace merlin::netsim
