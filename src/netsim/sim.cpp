#include "netsim/sim.h"

#include <algorithm>
#include <deque>

#include "util/error.h"

namespace merlin::netsim {

std::vector<std::uint64_t> progressive_fill(
    const std::vector<std::vector<int>>& flow_channels,
    const std::vector<std::uint64_t>& guarantee,
    const std::vector<std::uint64_t>& limit,
    const std::vector<std::uint64_t>& channel_capacity) {
    const std::size_t n = flow_channels.size();
    std::vector<std::uint64_t> rate(n, 0);

    // ---- Stage 1: guaranteed rates (bounded by the flow's own limit).
    for (std::size_t f = 0; f < n; ++f)
        rate[f] = std::min(guarantee[f], limit[f]);

    // Scale down proportionally on oversubscribed channels (the compiler
    // prevents this; the simulator stays safe regardless).
    std::vector<std::uint64_t> used(channel_capacity.size(), 0);
    for (std::size_t f = 0; f < n; ++f)
        for (int c : flow_channels[f]) used[static_cast<std::size_t>(c)] += rate[f];
    for (std::size_t c = 0; c < channel_capacity.size(); ++c) {
        if (used[c] <= channel_capacity[c]) continue;
        const double scale = static_cast<double>(channel_capacity[c]) /
                             static_cast<double>(used[c]);
        for (std::size_t f = 0; f < n; ++f)
            for (int ch : flow_channels[f])
                if (static_cast<std::size_t>(ch) == c)
                    rate[f] = static_cast<std::uint64_t>(
                        static_cast<double>(rate[f]) * scale);
    }

    // ---- Stage 2: progressive filling of the residual capacity.
    std::fill(used.begin(), used.end(), 0);
    for (std::size_t f = 0; f < n; ++f)
        for (int c : flow_channels[f]) used[static_cast<std::size_t>(c)] += rate[f];

    std::vector<bool> active(n);
    for (std::size_t f = 0; f < n; ++f)
        active[f] = rate[f] < limit[f] && !flow_channels[f].empty();

    constexpr std::uint64_t kEps = 1;  // 1 bps resolution
    for (int round = 0; round < 4 * static_cast<int>(n) + 8; ++round) {
        // Count active flows per channel.
        std::vector<int> active_count(channel_capacity.size(), 0);
        bool any = false;
        for (std::size_t f = 0; f < n; ++f) {
            if (!active[f]) continue;
            any = true;
            for (int c : flow_channels[f])
                ++active_count[static_cast<std::size_t>(c)];
        }
        if (!any) break;

        // Uniform increment every active flow can take.
        std::uint64_t delta = ~std::uint64_t{0};
        for (std::size_t c = 0; c < channel_capacity.size(); ++c) {
            if (active_count[c] == 0) continue;
            const std::uint64_t headroom =
                channel_capacity[c] > used[c] ? channel_capacity[c] - used[c]
                                              : 0;
            delta = std::min(delta,
                             headroom / static_cast<std::uint64_t>(
                                            active_count[c]));
        }
        for (std::size_t f = 0; f < n; ++f)
            if (active[f]) delta = std::min(delta, limit[f] - rate[f]);

        if (delta > kEps) {
            for (std::size_t f = 0; f < n; ++f) {
                if (!active[f]) continue;
                rate[f] += delta;
                for (int c : flow_channels[f])
                    used[static_cast<std::size_t>(c)] += delta;
            }
        }

        // Freeze flows at their limit or crossing a saturated channel.
        for (std::size_t f = 0; f < n; ++f) {
            if (!active[f]) continue;
            if (rate[f] + kEps >= limit[f]) {
                active[f] = false;
                continue;
            }
            for (int c : flow_channels[f]) {
                const auto cc = static_cast<std::size_t>(c);
                const std::uint64_t headroom =
                    channel_capacity[cc] > used[cc]
                        ? channel_capacity[cc] - used[cc]
                        : 0;
                if (headroom <= kEps * static_cast<std::uint64_t>(
                                           std::max(active_count[cc], 1))) {
                    active[f] = false;
                    break;
                }
            }
        }
    }
    return rate;
}

Simulator::Simulator(const topo::Topology& topo) : topo_(topo) {
    channel_capacity_.resize(static_cast<std::size_t>(topo.link_count()) * 2);
    for (topo::LinkId l = 0; l < topo.link_count(); ++l) {
        channel_capacity_[static_cast<std::size_t>(2 * l)] =
            topo.link(l).capacity.bps();
        channel_capacity_[static_cast<std::size_t>(2 * l + 1)] =
            topo.link(l).capacity.bps();
    }
}

FlowId Simulator::add_flow(Flow_spec spec) {
    Flow flow;
    if (spec.route.empty()) {
        // BFS shortest path over the undirected topology.
        std::vector<topo::NodeId> parent(
            static_cast<std::size_t>(topo_.node_count()), topo::kNoNode);
        std::deque<topo::NodeId> queue{spec.src};
        parent[static_cast<std::size_t>(spec.src)] = spec.src;
        while (!queue.empty()) {
            const topo::NodeId v = queue.front();
            queue.pop_front();
            if (v == spec.dst) break;
            for (const auto& adj : topo_.neighbors(v)) {
                if (!topo_.link_up(adj.link)) continue;  // failed link
                // Hosts do not forward transit traffic.
                if (adj.node != spec.dst &&
                    topo_.node(adj.node).kind == topo::Node_kind::host)
                    continue;
                if (parent[static_cast<std::size_t>(adj.node)] ==
                    topo::kNoNode) {
                    parent[static_cast<std::size_t>(adj.node)] = v;
                    queue.push_back(adj.node);
                }
            }
        }
        if (parent[static_cast<std::size_t>(spec.dst)] == topo::kNoNode)
            throw Topology_error("no route between flow endpoints");
        for (topo::NodeId v = spec.dst; v != spec.src;
             v = parent[static_cast<std::size_t>(v)])
            spec.route.push_back(v);
        spec.route.push_back(spec.src);
        std::reverse(spec.route.begin(), spec.route.end());
    }
    // Resolve the route into directed channel slots.
    for (std::size_t i = 0; i + 1 < spec.route.size(); ++i) {
        const topo::NodeId a = spec.route[i];
        const topo::NodeId b = spec.route[i + 1];
        const auto link = topo_.link_between(a, b);
        if (!link) throw Topology_error("flow route uses a missing link");
        const bool forward = topo_.link(*link).a == a;
        flow.channels.push_back(2 * *link + (forward ? 0 : 1));
    }
    flow.spec = std::move(spec);
    flows_.push_back(std::move(flow));
    dirty_ = true;
    return static_cast<FlowId>(flows_.size()) - 1;
}

void Simulator::remove_flow(FlowId id) {
    flows_[static_cast<std::size_t>(id)].alive = false;
    dirty_ = true;
}

void Simulator::set_demand(FlowId id, Bandwidth demand) {
    auto& f = flows_[static_cast<std::size_t>(id)];
    if (f.spec.demand != demand) {
        f.spec.demand = demand;
        dirty_ = true;
    }
}

void Simulator::allocate() {
    std::vector<std::vector<int>> channels;
    std::vector<std::uint64_t> guarantee;
    std::vector<std::uint64_t> limit;
    std::vector<std::size_t> index;
    for (std::size_t i = 0; i < flows_.size(); ++i) {
        const Flow& f = flows_[i];
        if (!f.alive) continue;
        channels.push_back(f.channels);
        guarantee.push_back(f.spec.guarantee.bps());
        std::uint64_t lim = f.spec.demand.bps();
        if (f.spec.cap) lim = std::min(lim, f.spec.cap->bps());
        limit.push_back(lim);
        index.push_back(i);
    }
    const auto rates =
        progressive_fill(channels, guarantee, limit, channel_capacity_);
    for (std::size_t k = 0; k < index.size(); ++k)
        flows_[index[k]].rate = Bandwidth(rates[k]);
    dirty_ = false;
}

void Simulator::step(double dt_seconds) {
    if (dirty_) allocate();
    for (Flow& f : flows_) {
        if (!f.alive) continue;
        f.delivered_bytes +=
            static_cast<double>(f.rate.bps()) / 8.0 * dt_seconds;
    }
    now_ += dt_seconds;
}

Bandwidth Simulator::rate(FlowId id) const {
    return flows_[static_cast<std::size_t>(id)].rate;
}

double Simulator::delivered_bytes(FlowId id) const {
    return flows_[static_cast<std::size_t>(id)].delivered_bytes;
}

const std::vector<topo::NodeId>& Simulator::route(FlowId id) const {
    return flows_[static_cast<std::size_t>(id)].spec.route;
}

}  // namespace merlin::netsim
