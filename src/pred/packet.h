// Concrete packets and direct predicate evaluation.
//
// Used by the network simulator to classify traffic and by the test suite as
// a ground-truth oracle for the BDD-based analyses: for every predicate p and
// packet k, `matches(p, k)` must agree with evaluating p's BDD on k's bits.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "ir/ast.h"

namespace merlin::pred {

// A packet is a partial map from field names to values plus a payload.
// Unset fields read as zero, mirroring how a parsed header behaves.
struct Packet {
    std::map<std::string, std::uint64_t> fields;
    std::string payload;

    [[nodiscard]] std::uint64_t get(const std::string& field) const {
        const auto it = fields.find(field);
        return it == fields.end() ? 0 : it->second;
    }
};

// Direct structural evaluation of a predicate against a packet.
[[nodiscard]] bool matches(const ir::PredPtr& p, const Packet& k);

}  // namespace merlin::pred
