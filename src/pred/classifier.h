// Shared predicate classification (ROADMAP item 2).
//
// Merlin's per-statement predicate handling compiles, checks, and emits once
// *per statement*, which collapses at the 10^5-statement policies "millions
// of users" implies. The fix — the common-subexpression sharing Ironbee's
// predicate module applies to rule systems — is to merge every statement
// predicate into ONE multi-terminal decision DAG whose terminals are *sets*
// of statement indices: classifying a header is a single root-to-leaf
// traversal, and the reachable terminal sets are exactly the statement
// combinations that can simultaneously match some packet (which is all the
// overlap/shadow analyses need).
//
// Construction is shared end to end:
//   * each distinct predicate text compiles to a BDD once (the analyzer's
//     memo), and statements whose predicates hash-cons to the same BDD root
//     form one *group* sharing a single terminal;
//   * per-group BDDs convert into MTBDD fragments and merge with a memoized
//     set-union apply in a balanced tree, so the DAG is built in near-linear
//     time for the disjoint-heavy policies Merlin produces.
//
// The classifier's DAG is self-contained (its nodes copy the variable
// indices out of the analyzer), so it stays valid even if the analyzer is
// vacuumed afterwards; only group_root() then names retired BDD nodes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "pred/analysis.h"

namespace merlin::pred {

class Classifier {
public:
    // Statement indices as used in terminal sets (positions in `preds`).
    using Index = std::uint32_t;

    // Builds the DAG over `preds`, compiling through (and growing)
    // `analyzer`'s BDD space. The analyzer must outlive classify(Packet)
    // calls; classify_bits() and match_sets() need only the classifier.
    Classifier(Analyzer& analyzer, const std::vector<ir::PredPtr>& preds);

    // Indices of the predicates matching the packet / assignment, ascending.
    // One DAG traversal; the returned set is interned (do not mutate).
    [[nodiscard]] const std::vector<Index>& classify(
        const Packet& packet) const;
    [[nodiscard]] const std::vector<Index>& classify_bits(
        const std::vector<bool>& bits) const;

    // Every non-empty statement set some packet maps to, each sorted
    // ascending, the list ordered lexicographically. A set of size >= 2 is a
    // proof of predicate overlap; pairwise disjointness holds iff every set
    // is a singleton.
    [[nodiscard]] std::vector<std::vector<Index>> match_sets() const;

    // Predicate groups: statements whose predicates compiled to the same
    // BDD root, in first-occurrence order. Unsatisfiable groups keep their
    // members but never appear in any match set.
    [[nodiscard]] std::size_t group_count() const { return groups_.size(); }
    [[nodiscard]] std::size_t group_of(std::size_t pred_index) const {
        return group_of_[pred_index];
    }
    [[nodiscard]] bdd::Node group_root(std::size_t group) const {
        return groups_[group].root;
    }
    [[nodiscard]] const std::vector<Index>& group_members(
        std::size_t group) const {
        return groups_[group].members;
    }

    // DAG size diagnostics (terminal-set leaves included in node_count).
    [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
    [[nodiscard]] std::size_t terminal_set_count() const {
        return sets_.size();
    }

private:
    // One MTBDD node. Internal: var < kLeafVar, low/high are node ids.
    // Leaf: var == kLeafVar, low is the interned terminal-set id.
    struct Mnode {
        int var;
        std::uint32_t low;
        std::uint32_t high;
    };
    struct Group {
        bdd::Node root;
        std::vector<Index> members;
    };
    static constexpr int kLeafVar = 1 << 20;

    [[nodiscard]] std::uint32_t intern_set(std::vector<Index> set);
    [[nodiscard]] std::uint32_t leaf(std::uint32_t set_id);
    [[nodiscard]] std::uint32_t make(int var, std::uint32_t low,
                                     std::uint32_t high);
    [[nodiscard]] std::uint32_t convert(
        const bdd::Manager& m, bdd::Node n, std::uint32_t group_leaf,
        std::unordered_map<bdd::Node, std::uint32_t>& memo);
    [[nodiscard]] std::uint32_t merge(std::uint32_t a, std::uint32_t b);

    Analyzer* analyzer_;
    std::vector<Mnode> nodes_;
    std::vector<std::vector<Index>> sets_;  // interned terminal sets
    std::unordered_map<std::string, std::uint32_t> set_intern_;  // key: text
    std::unordered_map<std::uint32_t, std::uint32_t> leaf_nodes_;
    std::unordered_map<std::uint64_t, std::uint32_t> unique_;
    std::unordered_map<std::uint64_t, std::uint32_t> merge_cache_;
    std::uint32_t empty_leaf_;
    std::uint32_t root_;
    std::vector<Group> groups_;
    std::vector<std::size_t> group_of_;  // pred index -> group id
};

}  // namespace merlin::pred
