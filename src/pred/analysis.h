// Predicate analyses: compilation to BDDs and the decision procedures Merlin
// needs (Sections 2.1 and 4.2).
//
//  * Section 2.1's pre-processor requires statements to "have disjoint
//    predicates and together match all packets".
//  * Section 4.2's negotiator verification checks predicate overlap,
//    partition totality, and per-statement implication.
//
// The paper used Z3; this module decides the same fragment with BDDs.
// Header fields map to bit variables (ir::fields() layout); each distinct
// payload pattern becomes one uninterpreted boolean variable, which is sound
// for the equalities/negations the language can express.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "bdd/bdd.h"
#include "ir/ast.h"
#include "pred/packet.h"

namespace merlin::pred {

class Analyzer {
public:
    Analyzer();

    // Compiles a predicate; results are hash-consed, so repeated calls with
    // equivalent predicates return identical nodes. Compilation is memoized
    // on the predicate's canonical text: each distinct predicate is compiled
    // exactly once per analyzer lifetime (until vacuum()), no matter how
    // many statements reference it.
    [[nodiscard]] bdd::Node compile(const ir::PredPtr& p);

    [[nodiscard]] bool disjoint(const ir::PredPtr& a, const ir::PredPtr& b);
    [[nodiscard]] bool implies(const ir::PredPtr& a, const ir::PredPtr& b);
    [[nodiscard]] bool equivalent(const ir::PredPtr& a, const ir::PredPtr& b);
    [[nodiscard]] bool satisfiable(const ir::PredPtr& a);
    // True when the disjunction of `preds` matches every packet.
    [[nodiscard]] bool total(const std::vector<ir::PredPtr>& preds);
    // True when preds are pairwise disjoint.
    [[nodiscard]] bool pairwise_disjoint(const std::vector<ir::PredPtr>& preds);

    // A concrete packet matching `p` (payload patterns are reflected by
    // concatenating the needles the assignment sets). Only valid when
    // satisfiable(p). Fields the assignment *forces* are always emitted,
    // including those forced to zero; only genuinely unconstrained fields
    // are omitted.
    [[nodiscard]] Packet witness(const ir::PredPtr& p);

    // The packet's full variable assignment under this analyzer's variable
    // layout: header bits (ir::fields(), MSB-first within a field) followed
    // by one bit per registered payload needle (true iff the payload
    // contains it). Evaluating any compiled BDD on these bits agrees with
    // pred::matches for every predicate this analyzer has seen.
    [[nodiscard]] std::vector<bool> bits_of(const Packet& packet) const;

    [[nodiscard]] bdd::Manager& manager() { return manager_; }

    // Memoization counters: distinct predicates actually compiled vs. calls
    // served from the canonical-text memo.
    [[nodiscard]] long long compile_count() const { return compiles_; }
    [[nodiscard]] long long compile_hit_count() const { return compile_hits_; }
    [[nodiscard]] std::size_t memo_size() const { return memo_.size(); }
    // Full BDD-space resets performed by vacuum().
    [[nodiscard]] long long vacuum_count() const { return vacuums_; }
    // BDD work counters, cumulative across vacuums (the manager's own
    // counters reset with it; retired totals are carried here).
    [[nodiscard]] long long bdd_apply_count() const {
        return retired_applies_ + manager_.apply_count();
    }
    [[nodiscard]] long long bdd_cache_hit_count() const {
        return retired_cache_hits_ + manager_.cache_hit_count();
    }

    // Discards the whole BDD space (nodes, apply cache, compile memo) while
    // keeping the variable layout — payload needles keep their variable
    // indices, so recompiled predicates mean the same thing. Every
    // bdd::Node previously returned by compile() is invalidated; callers
    // must only vacuum at points where none are held (the engine does so
    // between delta publications). This is what bounds a long-running
    // daemon's predicate memory: dead unique-table entries from retired
    // statements cannot be collected individually, so past a node-count
    // threshold the space is rebuilt from scratch on demand.
    void vacuum();
    // vacuum() iff node_count() exceeds `node_limit`; returns true if run.
    bool vacuum_if_above(std::size_t node_limit);

private:
    [[nodiscard]] bdd::Node compile_fresh(const ir::PredPtr& p);
    [[nodiscard]] bdd::Node field_equals(const std::string& field,
                                         std::uint64_t value);
    [[nodiscard]] int payload_variable(const std::string& needle);

    bdd::Manager manager_;
    std::map<std::string, int> payload_vars_;
    std::vector<std::string> payload_needles_;  // by variable order
    // Canonical predicate text -> compiled root.
    std::unordered_map<std::string, bdd::Node> memo_;
    long long compiles_ = 0;
    long long compile_hits_ = 0;
    long long vacuums_ = 0;
    long long retired_applies_ = 0;
    long long retired_cache_hits_ = 0;
};

}  // namespace merlin::pred
