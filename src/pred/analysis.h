// Predicate analyses: compilation to BDDs and the decision procedures Merlin
// needs (Sections 2.1 and 4.2).
//
//  * Section 2.1's pre-processor requires statements to "have disjoint
//    predicates and together match all packets".
//  * Section 4.2's negotiator verification checks predicate overlap,
//    partition totality, and per-statement implication.
//
// The paper used Z3; this module decides the same fragment with BDDs.
// Header fields map to bit variables (ir::fields() layout); each distinct
// payload pattern becomes one uninterpreted boolean variable, which is sound
// for the equalities/negations the language can express.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "bdd/bdd.h"
#include "ir/ast.h"
#include "pred/packet.h"

namespace merlin::pred {

class Analyzer {
public:
    Analyzer();

    // Compiles a predicate; results are hash-consed, so repeated calls with
    // equivalent predicates return identical nodes.
    [[nodiscard]] bdd::Node compile(const ir::PredPtr& p);

    [[nodiscard]] bool disjoint(const ir::PredPtr& a, const ir::PredPtr& b);
    [[nodiscard]] bool implies(const ir::PredPtr& a, const ir::PredPtr& b);
    [[nodiscard]] bool equivalent(const ir::PredPtr& a, const ir::PredPtr& b);
    [[nodiscard]] bool satisfiable(const ir::PredPtr& a);
    // True when the disjunction of `preds` matches every packet.
    [[nodiscard]] bool total(const std::vector<ir::PredPtr>& preds);
    // True when preds are pairwise disjoint.
    [[nodiscard]] bool pairwise_disjoint(const std::vector<ir::PredPtr>& preds);

    // A concrete packet matching `p` (payload patterns are reflected by
    // concatenating the needles the assignment sets). Only valid when
    // satisfiable(p).
    [[nodiscard]] Packet witness(const ir::PredPtr& p);

    [[nodiscard]] bdd::Manager& manager() { return manager_; }

private:
    [[nodiscard]] bdd::Node field_equals(const std::string& field,
                                         std::uint64_t value);
    [[nodiscard]] int payload_variable(const std::string& needle);

    bdd::Manager manager_;
    std::map<std::string, int> payload_vars_;
    std::vector<std::string> payload_needles_;  // by variable order
};

}  // namespace merlin::pred
