#include "pred/analysis.h"

#include "ir/fields.h"
#include "util/error.h"

namespace merlin::pred {

Analyzer::Analyzer() : manager_(ir::total_header_bits()) {}

bdd::Node Analyzer::field_equals(const std::string& field,
                                 std::uint64_t value) {
    const auto f = ir::find_field(field);
    if (!f) throw Policy_error("unknown field in predicate: " + field);
    // Conjunction of bit literals, built from the last variable upward so the
    // intermediate BDDs stay linear.
    bdd::Node acc = bdd::kTrue;
    for (int bit = 0; bit < f->width; ++bit) {
        // Variable order: most significant bit first within the field.
        const int var = f->bit_offset + bit;
        const int shift = f->width - 1 - bit;
        const bool set = ((value >> shift) & 1) != 0;
        const bdd::Node lit = set ? manager_.var(var) : manager_.nvar(var);
        acc = manager_.apply_and(acc, lit);
    }
    return acc;
}

int Analyzer::payload_variable(const std::string& needle) {
    const auto it = payload_vars_.find(needle);
    if (it != payload_vars_.end()) return it->second;
    const int var = manager_.add_variable();
    payload_vars_.emplace(needle, var);
    payload_needles_.push_back(needle);
    return var;
}

bdd::Node Analyzer::compile(const ir::PredPtr& p) {
    const std::string key = ir::to_string(p);
    const auto it = memo_.find(key);
    if (it != memo_.end()) {
        ++compile_hits_;
        return it->second;
    }
    ++compiles_;
    const bdd::Node out = compile_fresh(p);
    memo_.emplace(key, out);
    return out;
}

bdd::Node Analyzer::compile_fresh(const ir::PredPtr& p) {
    using ir::Pred_kind;
    switch (p->kind) {
        case Pred_kind::true_: return bdd::kTrue;
        case Pred_kind::false_: return bdd::kFalse;
        case Pred_kind::test: return field_equals(p->field, p->value);
        case Pred_kind::payload:
            return manager_.var(payload_variable(p->needle));
        case Pred_kind::and_:
            return manager_.apply_and(compile_fresh(p->lhs),
                                      compile_fresh(p->rhs));
        case Pred_kind::or_:
            return manager_.apply_or(compile_fresh(p->lhs),
                                     compile_fresh(p->rhs));
        case Pred_kind::not_: return manager_.negate(compile_fresh(p->lhs));
    }
    throw Error("unreachable predicate kind");
}

void Analyzer::vacuum() {
    // A fresh manager over the same variable layout: header bits plus the
    // payload variables registered so far (payload_variable() handed out
    // indices in needle order, which Manager(n) reproduces).
    retired_applies_ += manager_.apply_count();
    retired_cache_hits_ += manager_.cache_hit_count();
    manager_ = bdd::Manager(ir::total_header_bits() +
                            static_cast<int>(payload_needles_.size()));
    memo_.clear();
    ++vacuums_;
}

bool Analyzer::vacuum_if_above(std::size_t node_limit) {
    if (manager_.node_count() <= node_limit) return false;
    vacuum();
    return true;
}

bool Analyzer::disjoint(const ir::PredPtr& a, const ir::PredPtr& b) {
    return manager_.disjoint(compile(a), compile(b));
}

bool Analyzer::implies(const ir::PredPtr& a, const ir::PredPtr& b) {
    return manager_.implies(compile(a), compile(b));
}

bool Analyzer::equivalent(const ir::PredPtr& a, const ir::PredPtr& b) {
    return compile(a) == compile(b);
}

bool Analyzer::satisfiable(const ir::PredPtr& a) {
    return compile(a) != bdd::kFalse;
}

bool Analyzer::total(const std::vector<ir::PredPtr>& preds) {
    bdd::Node acc = bdd::kFalse;
    for (const ir::PredPtr& p : preds) acc = manager_.apply_or(acc, compile(p));
    return acc == bdd::kTrue;
}

bool Analyzer::pairwise_disjoint(const std::vector<ir::PredPtr>& preds) {
    std::vector<bdd::Node> nodes;
    nodes.reserve(preds.size());
    for (const ir::PredPtr& p : preds) nodes.push_back(compile(p));
    for (std::size_t i = 0; i < nodes.size(); ++i)
        for (std::size_t j = i + 1; j < nodes.size(); ++j)
            if (!manager_.disjoint(nodes[i], nodes[j])) return false;
    return true;
}

Packet Analyzer::witness(const ir::PredPtr& p) {
    const bdd::Node node = compile(p);
    if (node == bdd::kFalse)
        throw Policy_error("witness() on unsatisfiable predicate");
    std::vector<bool> decided;
    const std::vector<bool> bits = manager_.pick_assignment(node, decided);
    Packet out;
    const int header_bits = ir::total_header_bits();
    for (const ir::Field& f : ir::fields()) {
        std::uint64_t value = 0;
        bool constrained = false;
        for (int bit = 0; bit < f.width; ++bit) {
            value <<= 1;
            const auto idx = static_cast<std::size_t>(f.bit_offset + bit);
            if (idx < bits.size() && bits[idx]) value |= 1;
            if (idx < decided.size() && decided[idx]) constrained = true;
        }
        // A field is part of the witness when the assignment touched any of
        // its bits — including fields *forced* to zero (e.g. tcp.dst = 0),
        // which the value!=0 test used to misreport as unconstrained.
        if (value != 0 || constrained) out.fields[f.name] = value;
    }
    for (std::size_t i = 0; i < payload_needles_.size(); ++i) {
        const auto var = static_cast<std::size_t>(header_bits) + i;
        if (var < bits.size() && bits[var]) out.payload += payload_needles_[i];
    }
    return out;
}

std::vector<bool> Analyzer::bits_of(const Packet& packet) const {
    std::vector<bool> bits(
        static_cast<std::size_t>(manager_.variable_count()), false);
    for (const ir::Field& f : ir::fields()) {
        const std::uint64_t value = packet.get(f.name);
        for (int bit = 0; bit < f.width; ++bit) {
            const auto idx = static_cast<std::size_t>(f.bit_offset + bit);
            const int shift = f.width - 1 - bit;
            if (idx < bits.size()) bits[idx] = ((value >> shift) & 1) != 0;
        }
    }
    const auto header_bits = static_cast<std::size_t>(ir::total_header_bits());
    for (std::size_t i = 0; i < payload_needles_.size(); ++i) {
        const std::size_t var = header_bits + i;
        if (var < bits.size())
            bits[var] =
                packet.payload.find(payload_needles_[i]) != std::string::npos;
    }
    return bits;
}

}  // namespace merlin::pred
