#include "pred/packet.h"

#include "util/error.h"

namespace merlin::pred {

bool matches(const ir::PredPtr& p, const Packet& k) {
    using ir::Pred_kind;
    switch (p->kind) {
        case Pred_kind::true_: return true;
        case Pred_kind::false_: return false;
        case Pred_kind::test: return k.get(p->field) == p->value;
        case Pred_kind::payload:
            return k.payload.find(p->needle) != std::string::npos;
        case Pred_kind::and_: return matches(p->lhs, k) && matches(p->rhs, k);
        case Pred_kind::or_: return matches(p->lhs, k) || matches(p->rhs, k);
        case Pred_kind::not_: return !matches(p->lhs, k);
    }
    throw Error("unreachable predicate kind");
}

}  // namespace merlin::pred
