#include "pred/classifier.h"

#include <algorithm>
#include <iterator>
#include <map>
#include <string>
#include <utility>

namespace merlin::pred {
namespace {

// Injective mixing for (var, low, high) — same scheme as the BDD unique
// table: node ids stay below 2^27 and vars below 2^10 in our workloads
// (kLeafVar never enters unique_; leaves intern through leaf_nodes_).
std::uint64_t unique_key(int var, std::uint32_t low, std::uint32_t high) {
    return (static_cast<std::uint64_t>(var) << 54) ^
           (static_cast<std::uint64_t>(low) << 27) ^
           static_cast<std::uint64_t>(high);
}

std::uint64_t merge_key(std::uint32_t a, std::uint32_t b) {
    return (static_cast<std::uint64_t>(a) << 32) |
           static_cast<std::uint64_t>(b);
}

std::string set_text(const std::vector<Classifier::Index>& set) {
    std::string out;
    for (const Classifier::Index i : set) {
        out += std::to_string(i);
        out += ',';
    }
    return out;
}

}  // namespace

std::uint32_t Classifier::intern_set(std::vector<Index> set) {
    const std::string key = set_text(set);
    const auto it = set_intern_.find(key);
    if (it != set_intern_.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(sets_.size());
    sets_.push_back(std::move(set));
    set_intern_.emplace(key, id);
    return id;
}

std::uint32_t Classifier::leaf(std::uint32_t set_id) {
    const auto it = leaf_nodes_.find(set_id);
    if (it != leaf_nodes_.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back(Mnode{kLeafVar, set_id, 0});
    leaf_nodes_.emplace(set_id, id);
    return id;
}

std::uint32_t Classifier::make(int var, std::uint32_t low,
                               std::uint32_t high) {
    if (low == high) return low;  // reduction rule
    const std::uint64_t key = unique_key(var, low, high);
    const auto it = unique_.find(key);
    if (it != unique_.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back(Mnode{var, low, high});
    unique_.emplace(key, id);
    return id;
}

std::uint32_t Classifier::convert(
    const bdd::Manager& m, bdd::Node n, std::uint32_t group_leaf,
    std::unordered_map<bdd::Node, std::uint32_t>& memo) {
    if (n == bdd::kFalse) return empty_leaf_;
    if (n == bdd::kTrue) return group_leaf;
    const auto it = memo.find(n);
    if (it != memo.end()) return it->second;
    const std::uint32_t out =
        make(m.node_var(n), convert(m, m.node_low(n), group_leaf, memo),
             convert(m, m.node_high(n), group_leaf, memo));
    memo.emplace(n, out);
    return out;
}

std::uint32_t Classifier::merge(std::uint32_t a, std::uint32_t b) {
    if (a == b) return a;
    if (a == empty_leaf_) return b;
    if (b == empty_leaf_) return a;
    // Set union is commutative: canonicalize for the memo.
    if (a > b) std::swap(a, b);
    const std::uint64_t key = merge_key(a, b);
    const auto it = merge_cache_.find(key);
    if (it != merge_cache_.end()) return it->second;

    // Copies, not references: recursive merges grow nodes_.
    const Mnode na = nodes_[a];
    const Mnode nb = nodes_[b];
    std::uint32_t out;
    if (na.var == kLeafVar && nb.var == kLeafVar) {
        const std::vector<Index>& sa = sets_[na.low];
        const std::vector<Index>& sb = sets_[nb.low];
        std::vector<Index> merged;
        merged.reserve(sa.size() + sb.size());
        std::set_union(sa.begin(), sa.end(), sb.begin(), sb.end(),
                       std::back_inserter(merged));
        out = leaf(intern_set(std::move(merged)));
    } else {
        const int split = std::min(na.var, nb.var);
        const std::uint32_t a_low = na.var == split ? na.low : a;
        const std::uint32_t a_high = na.var == split ? na.high : a;
        const std::uint32_t b_low = nb.var == split ? nb.low : b;
        const std::uint32_t b_high = nb.var == split ? nb.high : b;
        out = make(split, merge(a_low, b_low), merge(a_high, b_high));
    }
    merge_cache_.emplace(key, out);
    return out;
}

Classifier::Classifier(Analyzer& analyzer,
                       const std::vector<ir::PredPtr>& preds)
    : analyzer_(&analyzer) {
    empty_leaf_ = leaf(intern_set({}));

    // Group statements by compiled BDD root: one terminal per distinct
    // predicate function, no matter how many statements share it.
    std::map<bdd::Node, std::size_t> group_index;
    group_of_.reserve(preds.size());
    for (std::size_t i = 0; i < preds.size(); ++i) {
        const bdd::Node root = analyzer.compile(preds[i]);
        const auto [it, inserted] =
            group_index.try_emplace(root, groups_.size());
        if (inserted) groups_.push_back(Group{root, {}});
        groups_[it->second].members.push_back(static_cast<Index>(i));
        group_of_.push_back(it->second);
    }

    // Convert each satisfiable group's BDD into an MTBDD fragment whose
    // true-terminal is the group's member set, then merge the fragments in
    // a balanced tree (keeps intermediate unions shallow and cacheable).
    std::vector<std::uint32_t> fragments;
    fragments.reserve(groups_.size());
    for (const Group& g : groups_) {
        if (g.root == bdd::kFalse) continue;
        const std::uint32_t group_leaf = leaf(intern_set(g.members));
        std::unordered_map<bdd::Node, std::uint32_t> memo;
        fragments.push_back(
            convert(analyzer.manager(), g.root, group_leaf, memo));
    }
    while (fragments.size() > 1) {
        std::vector<std::uint32_t> next;
        next.reserve((fragments.size() + 1) / 2);
        for (std::size_t i = 0; i + 1 < fragments.size(); i += 2)
            next.push_back(merge(fragments[i], fragments[i + 1]));
        if (fragments.size() % 2 != 0) next.push_back(fragments.back());
        fragments = std::move(next);
    }
    root_ = fragments.empty() ? empty_leaf_ : fragments.front();
}

const std::vector<Classifier::Index>& Classifier::classify_bits(
    const std::vector<bool>& bits) const {
    std::uint32_t n = root_;
    while (nodes_[n].var != kLeafVar) {
        const Mnode& nd = nodes_[n];
        const auto idx = static_cast<std::size_t>(nd.var);
        n = (idx < bits.size() && bits[idx]) ? nd.high : nd.low;
    }
    return sets_[nodes_[n].low];
}

const std::vector<Classifier::Index>& Classifier::classify(
    const Packet& packet) const {
    return classify_bits(analyzer_->bits_of(packet));
}

std::vector<std::vector<Classifier::Index>> Classifier::match_sets() const {
    std::vector<bool> visited(nodes_.size(), false);
    std::vector<std::uint32_t> stack{root_};
    std::vector<std::vector<Index>> out;
    while (!stack.empty()) {
        const std::uint32_t n = stack.back();
        stack.pop_back();
        if (visited[n]) continue;
        visited[n] = true;
        const Mnode& nd = nodes_[n];
        if (nd.var == kLeafVar) {
            if (!sets_[nd.low].empty()) out.push_back(sets_[nd.low]);
            continue;
        }
        stack.push_back(nd.low);
        stack.push_back(nd.high);
    }
    std::sort(out.begin(), out.end());
    return out;
}

}  // namespace merlin::pred
