#include "ir/ast.h"

#include <sstream>

#include "ir/fields.h"

namespace merlin::ir {

// ---------------------------------------------------------------- predicates

PredPtr pred_true() {
    static const PredPtr node = std::make_shared<Pred>(Pred{Pred_kind::true_,
                                                            {}, 0, {}, nullptr,
                                                            nullptr});
    return node;
}

PredPtr pred_false() {
    static const PredPtr node = std::make_shared<Pred>(
        Pred{Pred_kind::false_, {}, 0, {}, nullptr, nullptr});
    return node;
}

PredPtr pred_test(const std::string& field, std::uint64_t value) {
    return std::make_shared<Pred>(
        Pred{Pred_kind::test, field, value, {}, nullptr, nullptr});
}

PredPtr pred_payload(const std::string& needle) {
    return std::make_shared<Pred>(
        Pred{Pred_kind::payload, {}, 0, needle, nullptr, nullptr});
}

PredPtr pred_and(PredPtr a, PredPtr b) {
    return std::make_shared<Pred>(Pred{Pred_kind::and_, {}, 0, {},
                                       std::move(a), std::move(b)});
}

PredPtr pred_or(PredPtr a, PredPtr b) {
    return std::make_shared<Pred>(
        Pred{Pred_kind::or_, {}, 0, {}, std::move(a), std::move(b)});
}

PredPtr pred_not(PredPtr a) {
    return std::make_shared<Pred>(
        Pred{Pred_kind::not_, {}, 0, {}, std::move(a), nullptr});
}

bool equal(const PredPtr& a, const PredPtr& b) {
    if (a == b) return true;
    if (!a || !b) return false;
    if (a->kind != b->kind) return false;
    switch (a->kind) {
        case Pred_kind::true_:
        case Pred_kind::false_: return true;
        case Pred_kind::test:
            return a->field == b->field && a->value == b->value;
        case Pred_kind::payload: return a->needle == b->needle;
        case Pred_kind::and_:
        case Pred_kind::or_:
            return equal(a->lhs, b->lhs) && equal(a->rhs, b->rhs);
        case Pred_kind::not_: return equal(a->lhs, b->lhs);
    }
    return false;
}

namespace {

// Precedence for printing: or < and < not < atom.
int pred_prec(Pred_kind k) {
    switch (k) {
        case Pred_kind::or_: return 0;
        case Pred_kind::and_: return 1;
        case Pred_kind::not_: return 2;
        default: return 3;
    }
}

void print_pred(std::ostream& out, const PredPtr& p, int parent_prec) {
    const int prec = pred_prec(p->kind);
    const bool parens = prec < parent_prec;
    if (parens) out << '(';
    switch (p->kind) {
        case Pred_kind::true_: out << "true"; break;
        case Pred_kind::false_: out << "false"; break;
        case Pred_kind::test: {
            out << p->field << " = ";
            if (const auto f = find_field(p->field))
                out << format_field_value(*f, p->value);
            else
                out << p->value;
            break;
        }
        case Pred_kind::payload:
            out << "payload = \"" << p->needle << '"';
            break;
        case Pred_kind::and_:
            print_pred(out, p->lhs, prec);
            out << " and ";
            print_pred(out, p->rhs, prec + 1);
            break;
        case Pred_kind::or_:
            print_pred(out, p->lhs, prec);
            out << " or ";
            print_pred(out, p->rhs, prec + 1);
            break;
        case Pred_kind::not_:
            out << "! ";
            print_pred(out, p->lhs, prec + 1);
            break;
    }
    if (parens) out << ')';
}

}  // namespace

std::string to_string(const PredPtr& p) {
    std::ostringstream out;
    print_pred(out, p, 0);
    return out.str();
}

// ------------------------------------------------------------------- paths

PathPtr path_any() {
    static const PathPtr node =
        std::make_shared<Path>(Path{Path_kind::any, {}, nullptr, nullptr});
    return node;
}

PathPtr path_symbol(const std::string& name) {
    return std::make_shared<Path>(
        Path{Path_kind::symbol, name, nullptr, nullptr});
}

PathPtr path_seq(PathPtr a, PathPtr b) {
    return std::make_shared<Path>(
        Path{Path_kind::seq, {}, std::move(a), std::move(b)});
}

PathPtr path_alt(PathPtr a, PathPtr b) {
    return std::make_shared<Path>(
        Path{Path_kind::alt, {}, std::move(a), std::move(b)});
}

PathPtr path_star(PathPtr a) {
    return std::make_shared<Path>(
        Path{Path_kind::star, {}, std::move(a), nullptr});
}

PathPtr path_not(PathPtr a) {
    return std::make_shared<Path>(
        Path{Path_kind::not_, {}, std::move(a), nullptr});
}

PathPtr path_any_star() { return path_star(path_any()); }

bool equal(const PathPtr& a, const PathPtr& b) {
    if (a == b) return true;
    if (!a || !b) return false;
    if (a->kind != b->kind) return false;
    switch (a->kind) {
        case Path_kind::any: return true;
        case Path_kind::symbol: return a->symbol == b->symbol;
        case Path_kind::seq:
        case Path_kind::alt:
            return equal(a->lhs, b->lhs) && equal(a->rhs, b->rhs);
        case Path_kind::star:
        case Path_kind::not_: return equal(a->lhs, b->lhs);
    }
    return false;
}

namespace {

// Precedence: alt < seq < unary (star/not) < atom.
int path_prec(Path_kind k) {
    switch (k) {
        case Path_kind::alt: return 0;
        case Path_kind::seq: return 1;
        case Path_kind::star:
        case Path_kind::not_: return 2;
        default: return 3;
    }
}

void print_path(std::ostream& out, const PathPtr& p, int parent_prec) {
    const int prec = path_prec(p->kind);
    const bool parens = prec < parent_prec;
    if (parens) out << '(';
    switch (p->kind) {
        case Path_kind::any: out << '.'; break;
        case Path_kind::symbol: out << p->symbol; break;
        case Path_kind::seq:
            print_path(out, p->lhs, prec);
            out << ' ';
            print_path(out, p->rhs, prec + 1);
            break;
        case Path_kind::alt:
            print_path(out, p->lhs, prec);
            out << " | ";
            print_path(out, p->rhs, prec + 1);
            break;
        case Path_kind::star:
            print_path(out, p->lhs, prec + 1);
            out << '*';
            break;
        case Path_kind::not_:
            out << '!';
            print_path(out, p->lhs, prec + 1);
            break;
    }
    if (parens) out << ')';
}

void collect_symbols(const PathPtr& p, std::set<std::string>& out) {
    if (!p) return;
    if (p->kind == Path_kind::symbol) out.insert(p->symbol);
    collect_symbols(p->lhs, out);
    collect_symbols(p->rhs, out);
}

}  // namespace

std::string to_string(const PathPtr& p) {
    std::ostringstream out;
    print_path(out, p, 0);
    return out.str();
}

std::set<std::string> symbols_of(const PathPtr& p) {
    std::set<std::string> out;
    collect_symbols(p, out);
    return out;
}

int node_count(const PathPtr& p) {
    if (!p) return 0;
    return 1 + node_count(p->lhs) + node_count(p->rhs);
}

// -------------------------------------------------- bandwidth terms/formulas

bool equal(const Term& a, const Term& b) {
    return a.constant == b.constant && a.ids == b.ids;
}

std::string to_string(const Term& t) {
    std::ostringstream out;
    bool first = true;
    for (const std::string& id : t.ids) {
        if (!first) out << " + ";
        out << id;
        first = false;
    }
    if (t.constant != 0 || first) {
        if (!first) out << " + ";
        out << t.constant;
    }
    return out.str();
}

FormulaPtr formula_max(Term term, Bandwidth rate) {
    return std::make_shared<Formula>(Formula{Formula_kind::max,
                                             std::move(term), rate, nullptr,
                                             nullptr});
}

FormulaPtr formula_min(Term term, Bandwidth rate) {
    return std::make_shared<Formula>(Formula{Formula_kind::min,
                                             std::move(term), rate, nullptr,
                                             nullptr});
}

FormulaPtr formula_and(FormulaPtr a, FormulaPtr b) {
    return std::make_shared<Formula>(Formula{Formula_kind::and_, {},
                                             Bandwidth{}, std::move(a),
                                             std::move(b)});
}

FormulaPtr formula_or(FormulaPtr a, FormulaPtr b) {
    return std::make_shared<Formula>(Formula{Formula_kind::or_, {},
                                             Bandwidth{}, std::move(a),
                                             std::move(b)});
}

FormulaPtr formula_not(FormulaPtr a) {
    return std::make_shared<Formula>(
        Formula{Formula_kind::not_, {}, Bandwidth{}, std::move(a), nullptr});
}

bool equal(const FormulaPtr& a, const FormulaPtr& b) {
    if (a == b) return true;
    if (!a || !b) return false;
    if (a->kind != b->kind) return false;
    switch (a->kind) {
        case Formula_kind::max:
        case Formula_kind::min:
            return equal(a->term, b->term) && a->rate == b->rate;
        case Formula_kind::and_:
        case Formula_kind::or_:
            return equal(a->lhs, b->lhs) && equal(a->rhs, b->rhs);
        case Formula_kind::not_: return equal(a->lhs, b->lhs);
    }
    return false;
}

namespace {

int formula_prec(Formula_kind k) {
    switch (k) {
        case Formula_kind::or_: return 0;
        case Formula_kind::and_: return 1;
        case Formula_kind::not_: return 2;
        default: return 3;
    }
}

void print_formula(std::ostream& out, const FormulaPtr& f, int parent_prec) {
    const int prec = formula_prec(f->kind);
    const bool parens = prec < parent_prec;
    if (parens) out << '(';
    switch (f->kind) {
        case Formula_kind::max:
        case Formula_kind::min:
            out << (f->kind == Formula_kind::max ? "max(" : "min(")
                << to_string(f->term) << ", " << to_string(f->rate) << ')';
            break;
        case Formula_kind::and_:
            print_formula(out, f->lhs, prec);
            out << " and ";
            print_formula(out, f->rhs, prec + 1);
            break;
        case Formula_kind::or_:
            print_formula(out, f->lhs, prec);
            out << " or ";
            print_formula(out, f->rhs, prec + 1);
            break;
        case Formula_kind::not_:
            out << "! ";
            print_formula(out, f->lhs, prec + 1);
            break;
    }
    if (parens) out << ')';
}

void collect_ids(const FormulaPtr& f, std::set<std::string>& out) {
    if (!f) return;
    if (f->kind == Formula_kind::max || f->kind == Formula_kind::min)
        for (const std::string& id : f->term.ids) out.insert(id);
    collect_ids(f->lhs, out);
    collect_ids(f->rhs, out);
}

}  // namespace

std::string to_string(const FormulaPtr& f) {
    std::ostringstream out;
    print_formula(out, f, 0);
    return out.str();
}

std::set<std::string> ids_of(const FormulaPtr& f) {
    std::set<std::string> out;
    collect_ids(f, out);
    return out;
}

// ------------------------------------------------------------------- policy

bool equal(const Statement& a, const Statement& b) {
    return a.id == b.id && equal(a.predicate, b.predicate) &&
           equal(a.path, b.path);
}

bool equal(const Policy& a, const Policy& b) {
    if (a.statements.size() != b.statements.size()) return false;
    for (std::size_t i = 0; i < a.statements.size(); ++i)
        if (!equal(a.statements[i], b.statements[i])) return false;
    return equal(a.formula, b.formula);
}

std::string to_string(const Policy& p) {
    std::ostringstream out;
    out << "[\n";
    for (std::size_t i = 0; i < p.statements.size(); ++i) {
        const Statement& s = p.statements[i];
        out << "  " << s.id << " : " << to_string(s.predicate) << " -> "
            << to_string(s.path);
        if (i + 1 < p.statements.size()) out << " ;";
        out << '\n';
    }
    out << ']';
    if (p.formula) out << ",\n" << to_string(p.formula);
    out << '\n';
    return out.str();
}

const Statement* find_statement(const Policy& p, const std::string& id) {
    for (const Statement& s : p.statements)
        if (s.id == id) return &s;
    return nullptr;
}

}  // namespace merlin::ir
