// Abstract syntax of the Merlin policy language (Figure 1 of the paper).
//
//   pol ::= [s1; ...; sn], phi
//   s   ::= id : p -> a
//   phi ::= max(e, n) | min(e, n) | phi and phi | phi or phi | !phi
//   e   ::= n | id | e + e
//   a   ::= . | c | a a | a|a | a* | !a          (c ::= loc | transformation)
//   p   ::= h.f = n | true | false | p and p | p or p | !p
//
// Nodes are immutable and shared (`std::shared_ptr<const T>`), so policies
// can be transformed (localization, delegation, refinement) without copying
// whole trees.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "util/units.h"

namespace merlin::ir {

// ---------------------------------------------------------------- predicates

struct Pred;
using PredPtr = std::shared_ptr<const Pred>;

enum class Pred_kind : std::uint8_t {
    true_,
    false_,
    test,     // h.f = n
    payload,  // payload contains <string>  (uninterpreted atom)
    and_,
    or_,
    not_,
};

struct Pred {
    Pred_kind kind;
    // test
    std::string field;
    std::uint64_t value = 0;
    // payload
    std::string needle;
    // and_/or_: both; not_: only lhs
    PredPtr lhs;
    PredPtr rhs;
};

[[nodiscard]] PredPtr pred_true();
[[nodiscard]] PredPtr pred_false();
[[nodiscard]] PredPtr pred_test(const std::string& field, std::uint64_t value);
[[nodiscard]] PredPtr pred_payload(const std::string& needle);
[[nodiscard]] PredPtr pred_and(PredPtr a, PredPtr b);
[[nodiscard]] PredPtr pred_or(PredPtr a, PredPtr b);
[[nodiscard]] PredPtr pred_not(PredPtr a);

// Structural equality (no normalization).
[[nodiscard]] bool equal(const PredPtr& a, const PredPtr& b);
[[nodiscard]] std::string to_string(const PredPtr& p);

// ------------------------------------------------------------------- paths

struct Path;
using PathPtr = std::shared_ptr<const Path>;

enum class Path_kind : std::uint8_t {
    any,     // .
    symbol,  // a location or packet-processing function name
    seq,     // a1 a2
    alt,     // a1 | a2
    star,    // a*
    not_,    // !a   (complement)
};

struct Path {
    Path_kind kind;
    std::string symbol;
    PathPtr lhs;
    PathPtr rhs;
};

[[nodiscard]] PathPtr path_any();
[[nodiscard]] PathPtr path_symbol(const std::string& name);
[[nodiscard]] PathPtr path_seq(PathPtr a, PathPtr b);
[[nodiscard]] PathPtr path_alt(PathPtr a, PathPtr b);
[[nodiscard]] PathPtr path_star(PathPtr a);
[[nodiscard]] PathPtr path_not(PathPtr a);
// Convenience: `.*`
[[nodiscard]] PathPtr path_any_star();

[[nodiscard]] bool equal(const PathPtr& a, const PathPtr& b);
[[nodiscard]] std::string to_string(const PathPtr& p);
// All symbols (locations and function names) mentioned in the expression.
[[nodiscard]] std::set<std::string> symbols_of(const PathPtr& p);
// Number of AST nodes (the regex-complexity measure of Figure 9).
[[nodiscard]] int node_count(const PathPtr& p);

// -------------------------------------------------- bandwidth terms/formulas

// e ::= n | id | e + e, flattened into a constant plus identifier list.
struct Term {
    std::uint64_t constant = 0;  // bits per second contributed by literals
    std::vector<std::string> ids;
};

[[nodiscard]] bool equal(const Term& a, const Term& b);
[[nodiscard]] std::string to_string(const Term& t);

struct Formula;
using FormulaPtr = std::shared_ptr<const Formula>;

enum class Formula_kind : std::uint8_t { max, min, and_, or_, not_ };

struct Formula {
    Formula_kind kind;
    // max/min
    Term term;
    Bandwidth rate;
    // and_/or_: both; not_: only lhs
    FormulaPtr lhs;
    FormulaPtr rhs;
};

[[nodiscard]] FormulaPtr formula_max(Term term, Bandwidth rate);
[[nodiscard]] FormulaPtr formula_min(Term term, Bandwidth rate);
[[nodiscard]] FormulaPtr formula_and(FormulaPtr a, FormulaPtr b);
[[nodiscard]] FormulaPtr formula_or(FormulaPtr a, FormulaPtr b);
[[nodiscard]] FormulaPtr formula_not(FormulaPtr a);

[[nodiscard]] bool equal(const FormulaPtr& a, const FormulaPtr& b);
[[nodiscard]] std::string to_string(const FormulaPtr& f);
// Identifiers referenced anywhere in the formula.
[[nodiscard]] std::set<std::string> ids_of(const FormulaPtr& f);

// ------------------------------------------------------------------- policy

struct Statement {
    std::string id;
    PredPtr predicate;
    PathPtr path;
};

struct Policy {
    std::vector<Statement> statements;
    FormulaPtr formula;  // null when the policy has no bandwidth clause
};

[[nodiscard]] bool equal(const Statement& a, const Statement& b);
[[nodiscard]] bool equal(const Policy& a, const Policy& b);
// Concrete syntax; parses back to an equal policy.
[[nodiscard]] std::string to_string(const Policy& p);

// Looks up a statement by identifier; nullptr when absent.
[[nodiscard]] const Statement* find_statement(const Policy& p,
                                              const std::string& id);

}  // namespace merlin::ir
