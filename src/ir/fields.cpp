#include "ir/fields.h"

#include <array>
#include <cctype>
#include <sstream>

#include "util/strings.h"

namespace merlin::ir {
namespace {

std::vector<Field> make_fields() {
    // Order fixes the BDD variable layout; most discriminating fields first
    // keeps predicate BDDs small for typical policies.
    const std::array<std::pair<const char*, int>, 11> spec{{
        {"eth.src", 48},
        {"eth.dst", 48},
        {"eth.type", 16},
        {"vlan.id", 12},
        {"ip.src", 32},
        {"ip.dst", 32},
        {"ip.proto", 8},
        {"tcp.src", 16},
        {"tcp.dst", 16},
        {"udp.src", 16},
        {"udp.dst", 16},
    }};
    std::vector<Field> out;
    int offset = 0;
    for (const auto& [name, width] : spec) {
        out.push_back(Field{name, width, offset});
        offset += width;
    }
    return out;
}

// "tcpDst" -> "tcp.dst" etc. Returns empty if not an alias.
std::string expand_alias(const std::string& name) {
    std::string out;
    for (char c : name) {
        if (std::isupper(static_cast<unsigned char>(c))) {
            out += '.';
            out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        } else {
            out += c;
        }
    }
    return out;
}

std::optional<std::uint64_t> parse_mac(const std::string& text) {
    const auto parts = split(text, ':');
    if (parts.size() != 6) return std::nullopt;
    std::uint64_t value = 0;
    for (const std::string& p : parts) {
        if (p.empty() || p.size() > 2) return std::nullopt;
        for (char c : p)
            if (!std::isxdigit(static_cast<unsigned char>(c)))
                return std::nullopt;
        value = (value << 8) | std::stoull(p, nullptr, 16);
    }
    return value;
}

std::optional<std::uint64_t> parse_ipv4(const std::string& text) {
    const auto parts = split(text, '.');
    if (parts.size() != 4) return std::nullopt;
    std::uint64_t value = 0;
    for (const std::string& p : parts) {
        if (p.empty() || p.size() > 3) return std::nullopt;
        for (char c : p)
            if (!std::isdigit(static_cast<unsigned char>(c)))
                return std::nullopt;
        const unsigned long octet = std::stoul(p);
        if (octet > 255) return std::nullopt;
        value = (value << 8) | octet;
    }
    return value;
}

std::optional<std::uint64_t> parse_symbolic(const Field& field,
                                            const std::string& text) {
    if (field.name == "ip.proto") {
        if (text == "tcp") return 6;
        if (text == "udp") return 17;
        if (text == "icmp") return 1;
    }
    if (field.name == "eth.type") {
        if (text == "ip") return 0x0800;
        if (text == "arp") return 0x0806;
        if (text == "vlan") return 0x8100;
    }
    return std::nullopt;
}

}  // namespace

const std::vector<Field>& fields() {
    static const std::vector<Field> table = make_fields();
    return table;
}

std::optional<Field> find_field(const std::string& name) {
    for (const Field& f : fields())
        if (f.name == name) return f;
    const std::string alias = expand_alias(name);
    for (const Field& f : fields())
        if (f.name == alias) return f;
    return std::nullopt;
}

int total_header_bits() {
    const Field& last = fields().back();
    return last.bit_offset + last.width;
}

std::optional<std::uint64_t> parse_field_value(const Field& field,
                                               const std::string& text) {
    if (text.empty()) return std::nullopt;
    std::optional<std::uint64_t> value;
    if (text.find(':') != std::string::npos)
        value = parse_mac(text);
    else if (text.find('.') != std::string::npos)
        value = parse_ipv4(text);
    else if (std::isdigit(static_cast<unsigned char>(text[0])))
        value = static_cast<std::uint64_t>(std::stoull(text, nullptr, 0));
    else
        value = parse_symbolic(field, text);
    if (!value) return std::nullopt;
    // Range check against the field width.
    if (field.width < 64 && *value >= (1ULL << field.width))
        return std::nullopt;
    return value;
}

std::string format_field_value(const Field& field, std::uint64_t value) {
    if (field.width == 48) {  // MAC
        std::ostringstream out;
        for (int i = 5; i >= 0; --i) {
            const unsigned byte = static_cast<unsigned>((value >> (8 * i)) & 0xff);
            out << std::hex;
            if (byte < 16) out << '0';
            out << byte;
            if (i > 0) out << ':';
        }
        return out.str();
    }
    if (field.name == "ip.src" || field.name == "ip.dst") {
        std::ostringstream out;
        for (int i = 3; i >= 0; --i) {
            out << ((value >> (8 * i)) & 0xff);
            if (i > 0) out << '.';
        }
        return out.str();
    }
    return std::to_string(value);
}

}  // namespace merlin::ir
