// Packet header fields known to Merlin predicates (Section 2.1).
//
// The paper provides "atomic predicates for a number of standard protocols
// including Ethernet, IP, TCP, and UDP, and a special predicate for matching
// packet payloads". Each field has a fixed bit width; values are parsed from
// the natural textual form (MAC colons, dotted IPv4, protocol names, decimal
// and hex numbers).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace merlin::ir {

struct Field {
    std::string name;  // e.g. "tcp.dst"
    int width;         // bits
    int bit_offset;    // first BDD variable index for this field
};

// The fixed field dictionary, in BDD variable order.
[[nodiscard]] const std::vector<Field>& fields();

// Looks up a field by name; accepts both the canonical dotted form
// ("tcp.dst") and the camel alias used in some of the paper's examples
// ("tcpDst"). Returns nullopt for unknown fields.
[[nodiscard]] std::optional<Field> find_field(const std::string& name);

// Total number of header bits across all fields (= BDD variable count
// dedicated to concrete header matching).
[[nodiscard]] int total_header_bits();

// Parses a field value: decimal, 0x-hex, MAC (aa:bb:cc:dd:ee:ff),
// IPv4 dotted quad, or a protocol/ethertype name (tcp, udp, icmp, ip, arp).
// Returns nullopt if the text is not a valid value for the field, including
// values that do not fit in the field's width.
[[nodiscard]] std::optional<std::uint64_t> parse_field_value(
    const Field& field, const std::string& text);

// Renders a value in the conventional form for the field (MACs with colons,
// IPv4 dotted, everything else decimal).
[[nodiscard]] std::string format_field_value(const Field& field,
                                             std::uint64_t value);

}  // namespace merlin::ir
