#include "bdd/bdd.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace merlin::bdd {
namespace {

// Terminals sort after every real variable.
constexpr int kTerminalVar = std::numeric_limits<int>::max();

std::uint64_t unique_key(int var, Node low, Node high) {
    // Nodes stay comfortably below 2^24 in our workloads, but use a mixing
    // scheme that stays injective up to 2^27 nodes and 2^10 variables.
    return (static_cast<std::uint64_t>(var) << 54) ^
           (static_cast<std::uint64_t>(low) << 27) ^
           static_cast<std::uint64_t>(high);
}

std::uint64_t cache_key(std::uint8_t op, Node a, Node b) {
    return (static_cast<std::uint64_t>(op) << 56) ^
           (static_cast<std::uint64_t>(a) << 28) ^ static_cast<std::uint64_t>(b);
}

}  // namespace

Manager::Manager(int variable_count) : variable_count_(variable_count) {
    expects(variable_count >= 0, "BDD variable count must be non-negative");
    nodes_.push_back(Node_data{kTerminalVar, kFalse, kFalse});  // kFalse
    nodes_.push_back(Node_data{kTerminalVar, kTrue, kTrue});    // kTrue
}

int Manager::add_variable() { return variable_count_++; }

Node Manager::make(int var, Node low, Node high) {
    if (low == high) return low;  // reduction rule
    const std::uint64_t key = unique_key(var, low, high);
    const auto it = unique_.find(key);
    if (it != unique_.end()) return it->second;
    const Node id = static_cast<Node>(nodes_.size());
    nodes_.push_back(Node_data{var, low, high});
    unique_.emplace(key, id);
    return id;
}

Node Manager::var(int v) {
    expects(v >= 0 && v < variable_count_, "BDD variable out of range");
    return make(v, kFalse, kTrue);
}

Node Manager::nvar(int v) {
    expects(v >= 0 && v < variable_count_, "BDD variable out of range");
    return make(v, kTrue, kFalse);
}

void Manager::sweep_cache_if_oversized() {
    const std::size_t limit =
        std::max(kCacheFloor, kCacheNodeFactor * nodes_.size());
    if (cache_.size() < limit) return;
    cache_.clear();
    ++cache_sweeps_;
}

Node Manager::apply(Op op, Node a, Node b) {
    ++apply_calls_;
    // Terminal short-cuts.
    switch (op) {
        case Op::and_:
            if (a == kFalse || b == kFalse) return kFalse;
            if (a == kTrue) return b;
            if (b == kTrue) return a;
            if (a == b) return a;
            break;
        case Op::or_:
            if (a == kTrue || b == kTrue) return kTrue;
            if (a == kFalse) return b;
            if (b == kFalse) return a;
            if (a == b) return a;
            break;
        case Op::xor_:
            if (a == kFalse) return b;
            if (b == kFalse) return a;
            if (a == b) return kFalse;
            if (a == kTrue) return negate(b);
            if (b == kTrue) return negate(a);
            break;
    }
    // Commutative ops: canonicalize the argument order for the cache.
    if (a > b) std::swap(a, b);
    const std::uint64_t key = cache_key(static_cast<std::uint8_t>(op), a, b);
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
        ++cache_hits_;
        return it->second;
    }

    const Node_data& na = nodes_[static_cast<std::size_t>(a)];
    const Node_data& nb = nodes_[static_cast<std::size_t>(b)];
    const int split = na.var < nb.var ? na.var : nb.var;
    const Node a_low = na.var == split ? na.low : a;
    const Node a_high = na.var == split ? na.high : a;
    const Node b_low = nb.var == split ? nb.low : b;
    const Node b_high = nb.var == split ? nb.high : b;

    const Node low = apply(op, a_low, b_low);
    const Node high = apply(op, a_high, b_high);
    const Node out = make(split, low, high);
    sweep_cache_if_oversized();
    cache_.emplace(key, out);
    return out;
}

Node Manager::apply_and(Node a, Node b) { return apply(Op::and_, a, b); }
Node Manager::apply_or(Node a, Node b) { return apply(Op::or_, a, b); }
Node Manager::apply_xor(Node a, Node b) { return apply(Op::xor_, a, b); }

Node Manager::negate(Node a) {
    if (a == kFalse) return kTrue;
    if (a == kTrue) return kFalse;
    ++apply_calls_;
    // not(a) = a xor true, but terminal handling above would recurse; use a
    // dedicated cached traversal keyed as xor with kTrue.
    const std::uint64_t key =
        cache_key(static_cast<std::uint8_t>(Op::xor_), a, kTrue);
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
        ++cache_hits_;
        return it->second;
    }
    // Copy, not reference: the recursive negate calls can grow nodes_ and
    // reallocate it out from under a reference.
    const Node_data na = nodes_[static_cast<std::size_t>(a)];
    const Node out = make(na.var, negate(na.low), negate(na.high));
    sweep_cache_if_oversized();
    cache_.emplace(key, out);
    return out;
}

double Manager::sat_count(Node a) {
    // count(n) over remaining variables; memoized per call.
    std::unordered_map<Node, double> memo;
    auto rec = [&](auto&& self, Node n) -> double {
        // Returns assignments over variables strictly below var_of(n)'s level,
        // normalized afterwards with a power-of-two correction.
        if (n == kFalse) return 0;
        if (n == kTrue) return 1;
        const auto it = memo.find(n);
        if (it != memo.end()) return it->second;
        const Node_data& nd = nodes_[static_cast<std::size_t>(n)];
        const int lv = nd.low == kFalse || nd.low == kTrue
                           ? variable_count_
                           : var_of(nd.low);
        const int hv = nd.high == kFalse || nd.high == kTrue
                           ? variable_count_
                           : var_of(nd.high);
        const double low = self(self, nd.low) *
                           std::pow(2.0, lv - nd.var - 1);
        const double high = self(self, nd.high) *
                            std::pow(2.0, hv - nd.var - 1);
        const double out = low + high;
        memo.emplace(n, out);
        return out;
    };
    if (a == kFalse) return 0;
    if (a == kTrue) return std::pow(2.0, variable_count_);
    return rec(rec, a) * std::pow(2.0, var_of(a));
}

std::vector<bool> Manager::pick_assignment(Node a) {
    std::vector<bool> decided;
    return pick_assignment(a, decided);
}

std::vector<bool> Manager::pick_assignment(Node a, std::vector<bool>& decided) {
    decided.assign(static_cast<std::size_t>(variable_count_), false);
    if (a == kFalse) return {};
    std::vector<bool> out(static_cast<std::size_t>(variable_count_), false);
    Node n = a;
    while (n != kTrue) {
        const Node_data& nd = nodes_[static_cast<std::size_t>(n)];
        decided[static_cast<std::size_t>(nd.var)] = true;
        if (nd.high != kFalse) {
            out[static_cast<std::size_t>(nd.var)] = true;
            n = nd.high;
        } else {
            n = nd.low;
        }
    }
    return out;
}

bool Manager::evaluate(Node a, const std::vector<bool>& assignment) const {
    Node n = a;
    while (n != kTrue && n != kFalse) {
        const Node_data& nd = nodes_[static_cast<std::size_t>(n)];
        n = assignment[static_cast<std::size_t>(nd.var)] ? nd.high : nd.low;
    }
    return n == kTrue;
}

}  // namespace merlin::bdd
