// A reduced ordered binary decision diagram (ROBDD) engine.
//
// This is the decision procedure behind Merlin's predicate analyses
// (disjointness, totality, implication — Sections 2.1 and 4.2). The original
// system shelled out to the Z3 SMT solver; the predicate fragment of Figure 1
// is propositional over fixed-width header fields, so a BDD package decides
// it exactly and is self-contained.
//
// Nodes are hash-consed, so two equivalent functions always have the same
// node id; equivalence checking is pointer equality. Apply operations are
// memoized. Variables are identified by index; lower index = closer to the
// root.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace merlin::bdd {

using Node = std::uint32_t;

inline constexpr Node kFalse = 0;
inline constexpr Node kTrue = 1;

class Manager {
public:
    explicit Manager(int variable_count);

    [[nodiscard]] int variable_count() const { return variable_count_; }
    // Grows the variable universe (new variables order after existing ones).
    int add_variable();

    // The function "variable v" / "not variable v".
    [[nodiscard]] Node var(int v);
    [[nodiscard]] Node nvar(int v);

    [[nodiscard]] Node apply_and(Node a, Node b);
    [[nodiscard]] Node apply_or(Node a, Node b);
    [[nodiscard]] Node apply_xor(Node a, Node b);
    [[nodiscard]] Node negate(Node a);

    // Convenience combinations used by the analyses.
    [[nodiscard]] bool disjoint(Node a, Node b) {
        return apply_and(a, b) == kFalse;
    }
    [[nodiscard]] bool implies(Node a, Node b) {
        return apply_and(a, negate(b)) == kFalse;
    }
    [[nodiscard]] bool equivalent(Node a, Node b) const { return a == b; }

    // Number of satisfying assignments over all `variable_count()` variables,
    // as a double (exact for < 2^53).
    [[nodiscard]] double sat_count(Node a);

    // One satisfying assignment (variable -> value), empty when a == kFalse.
    // Variables not on the chosen path default to false. The second form
    // additionally records which variables the path actually decided, so a
    // caller can distinguish "forced to 0" from "unconstrained".
    [[nodiscard]] std::vector<bool> pick_assignment(Node a);
    [[nodiscard]] std::vector<bool> pick_assignment(Node a,
                                                    std::vector<bool>& decided);

    // Evaluates the function under a full assignment.
    [[nodiscard]] bool evaluate(Node a, const std::vector<bool>& assignment) const;

    // Structure of a non-terminal node (read-only; the classifier converts
    // BDDs into its own multi-terminal DAG through these).
    [[nodiscard]] bool is_terminal(Node n) const { return n <= kTrue; }
    [[nodiscard]] int node_var(Node n) const {
        return nodes_[static_cast<std::size_t>(n)].var;
    }
    [[nodiscard]] Node node_low(Node n) const {
        return nodes_[static_cast<std::size_t>(n)].low;
    }
    [[nodiscard]] Node node_high(Node n) const {
        return nodes_[static_cast<std::size_t>(n)].high;
    }

    // Live node count (diagnostics; includes the two terminals).
    [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

    // Work counters: apply/negate traversal steps and memo-cache hits.
    [[nodiscard]] long long apply_count() const { return apply_calls_; }
    [[nodiscard]] long long cache_hit_count() const { return cache_hits_; }
    // Times the memo cache hit its bound and was swept (see below).
    [[nodiscard]] long long cache_sweeps() const { return cache_sweeps_; }

    // The apply memo cache is bounded: whenever it grows past
    // `kCacheNodeFactor * node_count()` entries (at least kCacheFloor) it is
    // cleared. The cache is a pure memo — sweeping it never changes results,
    // it only bounds the manager's footprint to O(live nodes) instead of
    // O(total work), which is what keeps a long-running daemon flat.
    static constexpr std::size_t kCacheFloor = 1 << 16;
    static constexpr std::size_t kCacheNodeFactor = 8;

private:
    struct Node_data {
        int var;
        Node low;
        Node high;
    };

    enum class Op : std::uint8_t { and_, or_, xor_ };

    [[nodiscard]] Node make(int var, Node low, Node high);
    [[nodiscard]] Node apply(Op op, Node a, Node b);
    [[nodiscard]] int var_of(Node n) const {
        return nodes_[static_cast<std::size_t>(n)].var;
    }

    void sweep_cache_if_oversized();

    int variable_count_;
    std::vector<Node_data> nodes_;
    // Unique table: (var, low, high) -> node.
    std::unordered_map<std::uint64_t, Node> unique_;
    // Memo cache: (op, a, b) -> result. Bounded; see kCacheNodeFactor.
    std::unordered_map<std::uint64_t, Node> cache_;
    long long apply_calls_ = 0;
    long long cache_hits_ = 0;
    long long cache_sweeps_ = 0;
};

}  // namespace merlin::bdd
