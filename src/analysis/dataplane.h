// The symbolic dataplane checker: generated device tables lifted to
// per-device packet-set transfer functions.
//
// netsim::Rule_network routes ONE concrete packet; this module routes a
// *set* of packets — a statement's whole traffic class as a BDD — through
// the same table semantics, splitting the set where a rule matches part of
// it, and proves per class and ingress that every header the class contains
// is delivered to the right host with its tag stripped. Along any branch
// the VLAN tag and destination MAC are concrete (packets are injected
// untagged and every set_tag is a constant), so only the header set is
// symbolic; a parallel predicate expression mirrors the BDD so every
// finding carries a concrete witness packet.
//
// Check catalogue:
//   blackhole        error  part of a class reaches a device with no
//                           matching rule (or a matching rule with no
//                           action)
//   unexpected-drop  error  a non-drop statement's traffic hits a drop rule
//   forwarding-loop  error  a device/tag state repeats along a branch (the
//                           tables are memoryless, so those packets cycle
//                           forever)
//   ambiguous-rules  error  equal-priority rules that can match the same
//                           packet disagree on their action
//   failed-link      error  a rule forwards over a failed or absent link
//   misdelivery      error  traffic is handed to a host whose MAC is not
//                           the packet's destination
//   tag-leak         error  traffic is delivered with its VLAN tag not
//                           stripped
//   middlebox-stuck  error  a middlebox has no Click forward for the
//                           carried tag and no deterministic passthrough
//   shadowed-rule    warning a rule no packet can ever fire (every packet
//                           it matches is claimed by higher-priority rules)
//   update-blend     error  between two-phase update tables: a packet's
//                           after-prepare route differs from its pre-update
//                           route, or its after-commit route from its
//                           post-update route
//
// Class and ingress selection mirrors the testgen replay oracle exactly
// (pinned, non-drop, non-default statements; deterministic-passthrough
// paths; the provisioned path's first switch for guaranteed traffic, every
// live edge switch of the source for best-effort), so a configuration the
// replay oracle accepts is judged on the same traffic — just on all of it.
#pragma once

#include "analysis/analysis.h"
#include "codegen/codegen.h"
#include "codegen/diff.h"
#include "core/compiler.h"
#include "topo/topology.h"

namespace merlin::analysis {

// Static per-device structural checks (shadowed rules, equal-priority
// determinism); independent of any traffic class.
[[nodiscard]] Report check_tables(const codegen::Configuration& config,
                                  const topo::Topology& topo);

// Static checks plus symbolic per-class propagation for one configuration.
[[nodiscard]] Report check_dataplane(const core::Compilation& compilation,
                                     const codegen::Configuration& config,
                                     const topo::Topology& topo);

// Verifies a two-phase update: the post-update table fully (as
// check_dataplane) and, for every statement stable across the update, the
// four phase tables (pre-update, after prepare, after commit, post-update)
// — each must deliver the whole class, prepare must leave every packet on
// its pre-update route, and commit must put every packet on its post-update
// route (per-packet consistency, proved per header set).
[[nodiscard]] Report check_update(const core::Compilation& old_comp,
                                  const core::Compilation& new_comp,
                                  const codegen::Configuration& old_config,
                                  const codegen::Diff& diff,
                                  const codegen::Configuration& new_config,
                                  const topo::Topology& topo);

// Engine-hook adapter: feed each published Compilation (e.g. from
// core::Engine::on_publish) and every generation is verified — the first
// with check_dataplane, each subsequent one as a two-phase update from its
// predecessor through a persistent codegen::Incremental.
class Update_checker {
public:
    // The report for this generation (empty when everything proves out).
    // `check_transition` should be false when link state changed since the
    // previous generation: the old tables may then legitimately cross a
    // now-failed link, so only the new configuration is checked.
    [[nodiscard]] Report step(const core::Compilation& compilation,
                              const topo::Topology& topo,
                              bool check_transition = true);

    [[nodiscard]] const codegen::Configuration& config() const {
        return incremental_.config();
    }

private:
    codegen::Incremental incremental_;
    bool seeded_ = false;
    core::Compilation previous_;
    codegen::Configuration previous_config_;
};

}  // namespace merlin::analysis
