#include "analysis/refine.h"

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/witness.h"
#include "pred/analysis.h"
#include "presburger/localize.h"

namespace merlin::analysis {

namespace {

ir::PredPtr union_of(const ir::Policy& policy) {
    ir::PredPtr u = ir::pred_false();
    for (const ir::Statement& s : policy.statements)
        u = ir::pred_or(u, s.predicate);
    return u;
}

std::string term_text(const presburger::Aggregate& term) {
    return (term.is_max ? "max(" : "min(") +
           ir::to_string(ir::Term{0, term.ids}) + ", " +
           to_string(term.rate) + ")";
}

}  // namespace

Report check_refinement(const ir::Policy& original, const ir::Policy& refined,
                        const automata::Alphabet& alphabet) {
    Report report;
    pred::Analyzer analyzer;

    // ---- Totality: the refined statements must cover exactly the traffic
    // the original covers (refining may partition, never gain or lose).
    const ir::PredPtr original_union = union_of(original);
    const ir::PredPtr refined_union = union_of(refined);
    if (!analyzer.implies(original_union, refined_union))
        report.push_back(
            {Severity::error, "refine-totality", "",
             "refinement does not cover all traffic of the original policy "
             "(partition must be total)",
             packet_witness(analyzer, ir::pred_and(original_union,
                                                   ir::pred_not(
                                                       refined_union)))});
    if (!analyzer.implies(refined_union, original_union))
        report.push_back(
            {Severity::error, "refine-extra-traffic", "",
             "refinement claims traffic outside the original policy",
             packet_witness(analyzer, ir::pred_and(refined_union,
                                                   ir::pred_not(
                                                       original_union)))});

    // ---- Partition: refined statements must be pairwise disjoint. (The
    // engine's pre-processor would reject the adoption later; surfacing it
    // here keeps a broken partition out of the negotiator entirely.)
    const auto& children = refined.statements;
    for (std::size_t i = 0; i < children.size(); ++i)
        for (std::size_t j = i + 1; j < children.size(); ++j)
            if (!analyzer.disjoint(children[i].predicate,
                                   children[j].predicate))
                report.push_back(
                    {Severity::error, "refine-partition", children[i].id,
                     "overlaps refined statement '" + children[j].id +
                         "' (a partition requires disjoint predicates)",
                     packet_witness(analyzer,
                                    ir::pred_and(children[i].predicate,
                                                 children[j].predicate))});

    // ---- Per-overlap path inclusion, collecting the overlap map for the
    // bandwidth checks below. DFAs are memoized per statement.
    std::map<const ir::Statement*, automata::Dfa> dfas;
    auto dfa_of = [&](const ir::Statement& s) -> const automata::Dfa& {
        const auto it = dfas.find(&s);
        if (it != dfas.end()) return it->second;
        return dfas
            .emplace(&s, automata::determinize(
                             automata::thompson(s.path, alphabet)))
            .first->second;
    };

    // original statement id -> refined statements overlapping it.
    std::map<std::string, std::vector<const ir::Statement*>> overlaps;
    for (const ir::Statement& parent : original.statements) {
        for (const ir::Statement& child : refined.statements) {
            if (analyzer.disjoint(parent.predicate, child.predicate))
                continue;
            overlaps[parent.id].push_back(&child);
            const automata::Dfa escape = automata::intersect(
                dfa_of(child), automata::complement(dfa_of(parent)));
            if (const auto word = automata::shortest_word(escape))
                report.push_back(
                    {Severity::error, "refine-path-escape", child.id,
                     "statement '" + child.id +
                         "' allows paths outside those of original "
                         "statement '" +
                         parent.id + "'",
                     describe_word(alphabet, *word)});
        }
    }

    // ---- Bandwidth: refined allocations must imply the original's, term
    // by term. A constraint over several identifiers (max(x + y, R)) bounds
    // the SUM of the traffic its statements match, so tenants may re-divide
    // freely within a term ("the sum of the new allocations must not exceed
    // the original allocation", Section 4.1). The refined side is read in
    // localized per-statement form.
    const presburger::Rate_table refined_rates =
        presburger::requirements(presburger::localize(refined.formula));
    for (const presburger::Aggregate& term :
         presburger::terms(original.formula)) {
        // Union of refined statements overlapping any of the term's ids.
        std::set<const ir::Statement*> members;
        for (const std::string& id : term.ids) {
            const auto it = overlaps.find(id);
            if (it == overlaps.end()) continue;
            members.insert(it->second.begin(), it->second.end());
        }
        const std::string text = term_text(term);
        if (term.is_max) {
            Bandwidth sum;
            bool summable = true;
            for (const ir::Statement* child : members) {
                const auto cap = refined_rates.caps.find(child->id);
                if (cap == refined_rates.caps.end()) {
                    report.push_back({Severity::error, "refine-bandwidth",
                                      child->id,
                                      "statement '" + child->id +
                                          "' is uncapped but refines the "
                                          "capped original term " +
                                          text,
                                      ""});
                    summable = false;
                    continue;
                }
                sum += cap->second;
            }
            if (summable && sum > term.rate)
                report.push_back({Severity::error, "refine-bandwidth", "",
                                  "refined caps for original term " + text +
                                      " sum to " + to_string(sum) +
                                      ", above its cap",
                                  ""});
        } else {
            if (members.empty()) {
                report.push_back({Severity::error, "refine-bandwidth", "",
                                  "guaranteed original term " + text +
                                      " has no refined counterpart",
                                  ""});
                continue;
            }
            Bandwidth sum;
            for (const ir::Statement* child : members)
                sum += refined_rates.guarantee_of(child->id);
            if (sum < term.rate)
                report.push_back({Severity::error, "refine-bandwidth", "",
                                  "refined guarantees for original term " +
                                      text + " sum to " + to_string(sum) +
                                      ", below its guarantee",
                                  ""});
        }
    }

    return report;
}

}  // namespace merlin::analysis
