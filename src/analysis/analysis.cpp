#include "analysis/analysis.h"

#include <sstream>

namespace merlin::analysis {

const char* to_string(Severity severity) {
    return severity == Severity::error ? "error" : "warning";
}

bool has_errors(const Report& report) { return error_count(report) > 0; }

std::size_t error_count(const Report& report) {
    std::size_t count = 0;
    for (const Diagnostic& d : report)
        if (d.severity == Severity::error) ++count;
    return count;
}

std::string to_text(const Diagnostic& diagnostic) {
    std::ostringstream out;
    out << to_string(diagnostic.severity) << '[' << diagnostic.check << "] ";
    if (!diagnostic.subject.empty()) out << diagnostic.subject << ": ";
    out << diagnostic.message;
    if (!diagnostic.witness.empty())
        out << " (witness: " << diagnostic.witness << ')';
    return out.str();
}

std::string to_text(const Report& report) {
    std::ostringstream out;
    for (const Diagnostic& d : report) out << to_text(d) << '\n';
    return out.str();
}

namespace {

// Minimal JSON string escape: quotes, backslashes, control characters.
std::string escape(const std::string& text) {
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    static const char* hex = "0123456789abcdef";
                    out += "\\u00";
                    out += hex[(c >> 4) & 0xf];
                    out += hex[c & 0xf];
                } else {
                    out += c;
                }
        }
    }
    return out;
}

}  // namespace

std::string to_json(const Report& report) {
    std::ostringstream out;
    out << "[\n";
    for (std::size_t i = 0; i < report.size(); ++i) {
        const Diagnostic& d = report[i];
        out << "  {\"severity\": \"" << to_string(d.severity)
            << "\", \"check\": \"" << escape(d.check) << "\", \"subject\": \""
            << escape(d.subject) << "\", \"message\": \"" << escape(d.message)
            << "\", \"witness\": \"" << escape(d.witness) << "\"}"
            << (i + 1 < report.size() ? "," : "") << '\n';
    }
    out << "]\n";
    return out.str();
}

}  // namespace merlin::analysis
