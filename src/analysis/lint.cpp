#include "analysis/lint.h"

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/witness.h"
#include "automata/automata.h"
#include "core/logical.h"
#include "pred/analysis.h"
#include "pred/classifier.h"
#include "presburger/localize.h"
#include "util/error.h"

namespace merlin::analysis {

namespace {

void lint_predicates(const ir::Policy& policy, pred::Analyzer& analyzer,
                     Report& report) {
    const auto& stmts = policy.statements;
    std::vector<ir::PredPtr> preds;
    preds.reserve(stmts.size());
    for (const ir::Statement& s : stmts) preds.push_back(s.predicate);
    // One shared DAG replaces the O(n^2) pairwise disjoint() pass: a
    // statement is unsat iff its predicate group's root is false, and the
    // overlapping pairs are exactly those co-occurring in some reachable
    // terminal set. Witness/implication BDD work is then spent only on
    // pairs that actually overlap.
    const pred::Classifier classifier(analyzer, preds);
    for (std::size_t i = 0; i < stmts.size(); ++i) {
        if (classifier.group_root(classifier.group_of(i)) != bdd::kFalse)
            continue;
        report.push_back({Severity::warning, "unsat-predicate", stmts[i].id,
                          "predicate matches no packets", ""});
    }
    std::set<std::pair<std::size_t, std::size_t>> pairs;
    for (const auto& match_set : classifier.match_sets())
        for (std::size_t i = 0; i < match_set.size(); ++i)
            for (std::size_t j = i + 1; j < match_set.size(); ++j)
                pairs.emplace(match_set[i], match_set[j]);
    for (const auto& [i, j] : pairs) {
        const ir::PredPtr& a = stmts[i].predicate;
        const ir::PredPtr& b = stmts[j].predicate;
        const std::string both = packet_witness(analyzer, ir::pred_and(a, b));
        // Containment means one statement's traffic is entirely claimed
        // by the other — report the contained one as shadowed. A partial
        // overlap violates Section 2.1 disjointness symmetrically.
        if (analyzer.implies(b, a)) {
            report.push_back({Severity::error, "shadowed-predicate",
                              stmts[j].id,
                              "every packet it matches is also matched "
                              "by statement '" +
                                  stmts[i].id + "'",
                              both});
        } else if (analyzer.implies(a, b)) {
            report.push_back({Severity::error, "shadowed-predicate",
                              stmts[i].id,
                              "every packet it matches is also matched "
                              "by statement '" +
                                  stmts[j].id + "'",
                              both});
        } else {
            report.push_back({Severity::error, "overlapping-predicates",
                              stmts[i].id,
                              "overlaps statement '" + stmts[j].id +
                                  "' (predicates must be disjoint)",
                              both});
        }
    }
}

void lint_paths(const ir::Policy& policy, const topo::Topology& topo,
                pred::Analyzer& analyzer,
                const std::set<std::string>& guaranteed, Report& report) {
    const automata::Alphabet full = core::make_alphabet(topo);
    const automata::Alphabet switches = core::make_switch_alphabet(topo);
    for (const ir::Statement& s : policy.statements) {
        automata::Dfa dfa;
        try {
            dfa = automata::determinize(
                automata::remove_epsilon(automata::thompson(s.path, full)));
        } catch (const Policy_error& e) {
            report.push_back(
                {Severity::error, "unknown-location", s.id, e.what(), ""});
            continue;
        }
        if (automata::is_empty(dfa)) {
            report.push_back({Severity::error, "vacuous-path", s.id,
                              "path expression '" + ir::to_string(s.path) +
                                  "' accepts no location word",
                              packet_witness(analyzer, s.predicate)});
            continue;
        }
        if (guaranteed.contains(s.id)) continue;
        // Best-effort statements route over switches and middleboxes only
        // (Section 3.3); an expression whose every word needs a host symbol
        // can never be realized for them.
        bool dead = false;
        std::string detail;
        try {
            dead = automata::is_empty(automata::determinize(
                automata::remove_epsilon(automata::thompson(s.path,
                                                            switches))));
            detail = "admits no switch-level word";
        } catch (const Policy_error& e) {
            dead = true;
            detail = e.what();
        }
        if (dead)
            report.push_back({Severity::warning, "dead-best-effort", s.id,
                              "best-effort statement cannot be routed (" +
                                  detail + ")",
                              packet_witness(analyzer, s.predicate)});
    }
}

// Returns the ids with a positive guarantee, so the path lint knows which
// statements are best-effort. Formula findings are appended to `report`.
std::set<std::string> lint_formula(const ir::Policy& policy, Report& report) {
    std::set<std::string> guaranteed;
    if (!policy.formula) return guaranteed;

    for (const std::string& id : ir::ids_of(policy.formula))
        if (!ir::find_statement(policy, id))
            report.push_back({Severity::error, "unknown-id", id,
                              "formula references a statement the policy "
                              "does not define",
                              ""});

    std::vector<presburger::Aggregate> aggregates;
    try {
        aggregates = presburger::terms(policy.formula);
    } catch (const Policy_error& e) {
        report.push_back({Severity::warning, "unenforceable-formula", "",
                          std::string(e.what()) +
                              " (only positive conjunctions of max/min can "
                              "be enforced statically)",
                          ""});
        return guaranteed;
    }

    // Tightest single-id bounds, for the min>max check; every guaranteed id
    // (member of any min term) is excluded from the dead-best-effort lint.
    std::map<std::string, Bandwidth> guarantee;
    std::map<std::string, Bandwidth> cap;
    for (const presburger::Aggregate& t : aggregates) {
        if (!t.is_max)
            for (const std::string& id : t.ids) guaranteed.insert(id);
        if (t.ids.size() != 1) continue;
        const std::string& id = t.ids.front();
        if (t.is_max) {
            const auto it = cap.find(id);
            if (it == cap.end() || t.rate < it->second) cap[id] = t.rate;
        } else {
            const auto it = guarantee.find(id);
            if (it == guarantee.end() || t.rate > it->second)
                guarantee[id] = t.rate;
        }
    }
    for (const auto& [id, min_rate] : guarantee) {
        const auto it = cap.find(id);
        if (it != cap.end() && min_rate > it->second)
            report.push_back({Severity::error, "rate-conflict", id,
                              "guarantee " + to_string(min_rate) +
                                  " exceeds cap " + to_string(it->second),
                              ""});
    }
    // Aggregate caps must leave room for the guarantees of their members:
    // max(x + y, R) with min(x, gx) and min(y, gy) needs gx + gy <= R.
    for (const presburger::Aggregate& t : aggregates) {
        if (!t.is_max || t.ids.size() < 2) continue;
        Bandwidth sum;
        for (const std::string& id : t.ids) {
            const auto it = guarantee.find(id);
            if (it != guarantee.end()) sum += it->second;
        }
        if (sum > t.rate) {
            std::string members;
            for (const std::string& id : t.ids)
                members += (members.empty() ? "" : " + ") + id;
            report.push_back({Severity::error, "rate-conflict", members,
                              "summed guarantees " + to_string(sum) +
                                  " exceed the shared cap " +
                                  to_string(t.rate),
                              ""});
        }
    }
    return guaranteed;
}

}  // namespace

Report lint_policy(const ir::Policy& policy, const topo::Topology& topo) {
    Report report;
    pred::Analyzer analyzer;
    lint_predicates(policy, analyzer, report);
    const std::set<std::string> guaranteed = lint_formula(policy, report);
    lint_paths(policy, topo, analyzer, guaranteed, report);
    return report;
}

}  // namespace merlin::analysis
