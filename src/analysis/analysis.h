// Static analysis & verification (merlin-verify).
//
// The layers below this one *construct* network state: the compiler plans
// it, codegen emits it, netsim replays concrete packets over it. This layer
// *proves* properties about it symbolically, using the same BDD engine the
// pre-processor already trusts for predicate disjointness — so a property
// holds for all 2^k headers at once rather than for the packets a fuzzer
// happened to send. Three analyses share the diagnostic vocabulary below:
//
//   * the policy linter (lint.h): unsatisfiable / overlapping / shadowed
//     predicates, vacuous path expressions, dead best-effort statements,
//     and bandwidth-formula conflicts, before any compilation is attempted;
//   * the refinement verifier (refine.h): the paper's Section 4.2
//     delegation check — predicate partition, path-language inclusion,
//     allocation-sum bounds — with witnesses for every violation;
//   * the symbolic dataplane checker (dataplane.h): generated rule tables
//     lifted to per-device packet-set transfer functions, proving no
//     blackholes, loops, shadowed rules, ambiguous priority bands or tag
//     leaks for every traffic class, on both endpoints of a two-phase
//     update diff and at each intermediate phase.
#pragma once

#include <string>
#include <vector>

namespace merlin::analysis {

enum class Severity : std::uint8_t { error, warning };

[[nodiscard]] const char* to_string(Severity severity);

// One structured finding. `check` is a stable kebab-case identifier (the
// lint catalogue in README.md enumerates them); `subject` names what the
// finding is about — a statement id for policy-level checks, a device name
// for dataplane checks. `witness` is a concrete exhibit extracted from a
// satisfying BDD path (a packet for predicate findings, a location word for
// path-language findings); empty when the violation needs no exhibit.
struct Diagnostic {
    Severity severity = Severity::error;
    std::string check;
    std::string subject;
    std::string message;
    std::string witness;
};

using Report = std::vector<Diagnostic>;

[[nodiscard]] bool has_errors(const Report& report);
[[nodiscard]] std::size_t error_count(const Report& report);

// One line per diagnostic: "error[check] subject: message (witness ...)".
[[nodiscard]] std::string to_text(const Diagnostic& diagnostic);
[[nodiscard]] std::string to_text(const Report& report);

// A JSON array of {severity, check, subject, message, witness} objects
// (the `merlinc --lint-json` / `merlin-verify --json` machine interface).
[[nodiscard]] std::string to_json(const Report& report);

}  // namespace merlin::analysis
