// Witness rendering shared by the analyses: every error a BDD or automaton
// proves is backed by a concrete exhibit — a packet read off a satisfying
// BDD path, or a location word read off a shortest accepted path.
#pragma once

#include <string>
#include <vector>

#include "automata/automata.h"
#include "ir/ast.h"
#include "pred/analysis.h"
#include "pred/packet.h"

namespace merlin::analysis {

// "tcp.dst=80 ip.src=10.0.0.1" (fields in dictionary order, payload last);
// "any packet" for the packet with no constrained fields.
[[nodiscard]] std::string describe(const pred::Packet& packet);

// A concrete packet satisfying `p`, rendered; empty when unsatisfiable.
[[nodiscard]] std::string packet_witness(pred::Analyzer& analyzer,
                                         const ir::PredPtr& p);

// "path s1 mb0 s2" for a symbol word; "the empty path" for no symbols.
[[nodiscard]] std::string describe_word(const automata::Alphabet& alphabet,
                                        const std::vector<int>& word);

}  // namespace merlin::analysis
