// The policy linter: static checks on a parsed policy against a topology,
// before any compilation is attempted. The checks mirror what the engine
// front-end would reject at compile time (overlapping predicates, unknown
// formula ids) plus defects it would silently provision around (vacuous
// paths, dead best-effort statements, unsatisfiable predicates) — each with
// a concrete witness extracted from a satisfying BDD path where one exists.
//
// Check catalogue (stable ids; see README.md):
//   unsat-predicate        warning  predicate matches no packets
//   shadowed-predicate     error    a statement's packets are all claimed by
//                                   another statement (containment)
//   overlapping-predicates error    two statements match a common packet
//                                   (partial overlap; paper Section 2.1
//                                   requires disjoint predicates)
//   vacuous-path           error    path expression accepts no location word
//                                   over this topology
//   unknown-location       error    path expression names a location/function
//                                   the topology does not have
//   dead-best-effort       warning  best-effort statement whose expression
//                                   admits no switch-level word (Section 3.3
//                                   routes best-effort over switches only)
//   rate-conflict          error    min > max for one id, or a max() term's
//                                   rate below the sum of its members'
//                                   guarantees
//   unknown-id             error    formula references a statement id the
//                                   policy does not define
//   unenforceable-formula  warning  formula uses or/! (accepted by the
//                                   language, not enforceable statically)
#pragma once

#include "analysis/analysis.h"
#include "ir/ast.h"
#include "topo/topology.h"

namespace merlin::analysis {

[[nodiscard]] Report lint_policy(const ir::Policy& policy,
                                 const topo::Topology& topo);

}  // namespace merlin::analysis
