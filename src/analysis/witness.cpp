#include "analysis/witness.h"

#include <sstream>

#include "ir/fields.h"

namespace merlin::analysis {

std::string describe(const pred::Packet& packet) {
    std::ostringstream out;
    bool first = true;
    for (const auto& [name, value] : packet.fields) {
        if (!first) out << ' ';
        first = false;
        const auto field = ir::find_field(name);
        out << name << '=';
        if (field)
            out << ir::format_field_value(*field, value);
        else
            out << value;
    }
    if (!packet.payload.empty()) {
        if (!first) out << ' ';
        first = false;
        out << "payload=\"" << packet.payload << '"';
    }
    if (first) out << "any packet";
    return out.str();
}

std::string packet_witness(pred::Analyzer& analyzer, const ir::PredPtr& p) {
    if (!analyzer.satisfiable(p)) return {};
    return describe(analyzer.witness(p));
}

std::string describe_word(const automata::Alphabet& alphabet,
                          const std::vector<int>& word) {
    if (word.empty()) return "the empty path";
    std::ostringstream out;
    out << "path";
    for (const int symbol : word) out << ' ' << alphabet.name(symbol);
    return out.str();
}

}  // namespace merlin::analysis
