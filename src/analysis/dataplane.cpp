#include "analysis/dataplane.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/witness.h"
#include "pred/analysis.h"
#include "pred/classifier.h"

namespace merlin::analysis {

namespace {

// ------------------------------------------------------------ lifted tables

struct Click_forward {
    int in_tag = -1;
    int out_tag = -1;
    std::string toward;
};

// Parses "VLANClassifier(<in>) -> SetVLANAnno(<out>) -> ToDevice(toward
// <name>);" out of a middlebox forwarding Click config (the exact shape
// codegen emits); nullopt for any other snippet.
std::optional<Click_forward> parse_click_forward(const std::string& config) {
    const auto classify = config.find("VLANClassifier(");
    const auto anno = config.find("SetVLANAnno(");
    const auto toward = config.find("ToDevice(toward ");
    if (classify == std::string::npos || anno == std::string::npos ||
        toward == std::string::npos)
        return std::nullopt;
    const auto classify_end = config.find(')', classify);
    const auto anno_end = config.find(')', anno);
    const auto toward_end = config.find(')', toward);
    if (classify_end == std::string::npos || anno_end == std::string::npos ||
        toward_end == std::string::npos)
        return std::nullopt;
    try {
        Click_forward out;
        out.in_tag = std::stoi(
            config.substr(classify + 15, classify_end - classify - 15));
        out.out_tag =
            std::stoi(config.substr(anno + 12, anno_end - anno - 12));
        out.toward = config.substr(toward + 16, toward_end - toward - 16);
        return out;
    } catch (const std::logic_error&) {
        return std::nullopt;
    }
}

// A configuration indexed per device, switch rules sorted by descending
// priority (stably, so equal-priority iteration order matches emission).
struct Lifted {
    std::map<std::string, std::vector<const codegen::Flow_rule*>> rules;
    std::map<std::string, std::vector<Click_forward>> clicks;

    explicit Lifted(const codegen::Configuration& config) {
        for (const codegen::Flow_rule& r : config.flow_rules)
            rules[r.device].push_back(&r);
        for (auto& [device, list] : rules)
            std::stable_sort(list.begin(), list.end(),
                             [](const codegen::Flow_rule* a,
                                const codegen::Flow_rule* b) {
                                 return a->priority > b->priority;
                             });
        for (const codegen::Click_config& c : config.click_configs)
            if (const auto f = parse_click_forward(c.config))
                clicks[c.device].push_back(*f);
    }
};

// The header predicate a rule matches (null = wildcard = true).
const ir::PredPtr& pred_of(const codegen::Flow_rule& r) {
    static const ir::PredPtr kTrue = ir::pred_true();
    return r.match == nullptr ? kTrue : r.match;
}

bool same_action(const codegen::Flow_rule& a, const codegen::Flow_rule& b) {
    return a.drop == b.drop && a.set_tag == b.set_tag &&
           a.strip_tag == b.strip_tag && a.out_port == b.out_port;
}

// ---------------------------------------------------------- static checks

// True when every packet matching `r`'s tag pattern also matches `cover`'s
// (i.e. cover's tag side is a wildcard or pins the same value r pins).
// With `r` the wildcard and `cover` concrete the answer is no: cover only
// claims one tag's slice. Used for both the tag and dst-mac match sides.
template <typename T>
bool generalizes(const std::optional<T>& cover, const std::optional<T>& of) {
    return !cover.has_value() || (of.has_value() && *cover == *of);
}

template <typename T>
bool patterns_overlap(const std::optional<T>& a, const std::optional<T>& b) {
    return !a.has_value() || !b.has_value() || *a == *b;
}

void check_device_tables(const Lifted& lifted, pred::Analyzer& analyzer,
                         Report& report) {
    for (const auto& [device, rules] : lifted.rules) {
        for (std::size_t i = 0; i < rules.size(); ++i) {
            const codegen::Flow_rule& r = *rules[i];
            if (!analyzer.satisfiable(pred_of(r))) continue;

            // Equal-priority determinism: two rules in the same band that
            // can match a common packet must agree on what to do with it.
            for (std::size_t j = i + 1;
                 j < rules.size() && rules[j]->priority == r.priority; ++j) {
                const codegen::Flow_rule& other = *rules[j];
                if (same_action(r, other)) continue;
                if (!patterns_overlap(r.match_tag, other.match_tag) ||
                    !patterns_overlap(r.match_dst_mac, other.match_dst_mac))
                    continue;
                const ir::PredPtr both =
                    ir::pred_and(pred_of(r), pred_of(other));
                if (!analyzer.satisfiable(both)) continue;
                report.push_back(
                    {Severity::error, "ambiguous-rules", device,
                     "equal-priority rules disagree: [" +
                         codegen::to_text(r) + "] vs [" +
                         codegen::to_text(other) + "]",
                     packet_witness(analyzer, both)});
            }

            // Shadowing (sound under-approximation): a higher-priority rule
            // contributes to covering `r` only when its tag and dst
            // patterns generalize r's, so the header predicates alone
            // decide whether any packet is left for r to claim.
            ir::PredPtr covered = ir::pred_false();
            bool any_cover = false;
            for (std::size_t j = 0; j < i; ++j) {
                const codegen::Flow_rule& higher = *rules[j];
                if (higher.priority == r.priority) break;
                if (!generalizes(higher.match_tag, r.match_tag) ||
                    !generalizes(higher.match_dst_mac, r.match_dst_mac))
                    continue;
                covered = ir::pred_or(covered, pred_of(higher));
                any_cover = true;
            }
            if (any_cover && analyzer.implies(pred_of(r), covered))
                report.push_back(
                    {Severity::warning, "shadowed-rule", device,
                     "rule [" + codegen::to_text(r) +
                         "] can never fire: higher-priority rules claim "
                         "every packet it matches",
                     packet_witness(analyzer, pred_of(r))});
        }
    }
}

// ------------------------------------------------------ symbolic propagation

// One delivered slice of a class: the devices its packets visited (in
// order, ending at the host) and the header set that took that route.
struct Delivery {
    std::vector<std::string> path;
    bdd::Node set = bdd::kFalse;
    ir::PredPtr expr;
};

struct Class_check {
    std::string id;
    ir::PredPtr predicate;
    std::uint64_t dst_mac = 0;
    std::string dst_name;
    std::vector<std::string> ingresses;
};

// A branch of the symbolic flow: a header subset at a concrete position.
struct Branch {
    std::string device;
    std::string prev;  // "" at the ingress
    int tag = -1;
    bdd::Node set = bdd::kFalse;
    ir::PredPtr expr;
    std::vector<std::string> path;
    std::set<std::string> visited;  // loop keys along this branch's history
    int ttl = 0;
};

// Routes the whole class set injected untagged at `ingress` through the
// lifted table, reporting every way any header subset can fail and
// returning the delivered slices. `phase` prefixes messages when checking
// the intermediate tables of an update ("" otherwise).
std::vector<Delivery> propagate(const Lifted& lifted,
                                const topo::Topology& topo,
                                pred::Analyzer& analyzer,
                                const Class_check& cls,
                                const std::string& ingress,
                                const std::string& phase, Report& report) {
    std::vector<Delivery> delivered;
    bdd::Manager& mgr = analyzer.manager();
    const std::string what = (phase.empty() ? "" : phase + ": ") +
                             "statement '" + cls.id + "' from " + ingress;
    auto diag = [&](const char* check, const std::string& message,
                    const ir::PredPtr& expr) {
        report.push_back({Severity::error, check, cls.id,
                          what + ": " + message,
                          packet_witness(analyzer, expr)});
    };

    std::vector<Branch> work;
    {
        Branch start;
        start.device = ingress;
        start.tag = -1;
        start.set = analyzer.compile(cls.predicate);
        start.expr = cls.predicate;
        start.ttl = 4 * topo.node_count() + 8;
        work.push_back(std::move(start));
    }

    while (!work.empty()) {
        Branch b = std::move(work.back());
        work.pop_back();
        const auto node_id = topo.find(b.device);
        if (!node_id) {
            diag("failed-link", "reaches unknown device '" + b.device + "'",
                 b.expr);
            continue;
        }
        const topo::Node_kind kind = topo.node(*node_id).kind;
        b.path.push_back(b.device);

        if (kind == topo::Node_kind::host) {
            if (b.device != cls.dst_name) {
                diag("misdelivery", "is handed to host '" + b.device + "'",
                     b.expr);
                continue;
            }
            if (b.tag != -1) {
                diag("tag-leak", "is delivered with tag " +
                                     std::to_string(b.tag) + " not stripped",
                     b.expr);
                continue;
            }
            delivered.push_back({std::move(b.path), b.set, b.expr});
            continue;
        }
        if (b.ttl-- <= 0) {
            diag("forwarding-loop", "exhausts its hop budget", b.expr);
            continue;
        }
        // Tables are memoryless: a switch's choice depends only on the
        // carried tag (and headers, which only narrow along a branch), a
        // middlebox's also on where the packet came from. Revisiting the
        // same state means every remaining header cycles forever.
        const std::string key =
            kind == topo::Node_kind::middlebox
                ? b.device + "|" + b.prev + "|" + std::to_string(b.tag)
                : b.device + "|" + std::to_string(b.tag);
        if (!b.visited.insert(key).second) {
            diag("forwarding-loop",
                 "revisits " + b.device + " carrying tag " +
                     std::to_string(b.tag),
                 b.expr);
            continue;
        }

        // Compute the successor branches (next device, tag, subset).
        struct Hop {
            std::string next;
            int tag;
            bdd::Node set;
            ir::PredPtr expr;
        };
        std::vector<Hop> hops;

        if (kind == topo::Node_kind::middlebox) {
            const Click_forward* forward = nullptr;
            if (const auto it = lifted.clicks.find(b.device);
                it != lifted.clicks.end())
                for (const Click_forward& f : it->second)
                    if (f.in_tag == b.tag) {
                        forward = &f;
                        break;
                    }
            if (forward != nullptr) {
                hops.push_back({forward->toward,
                                forward->out_tag != -1 ? forward->out_tag
                                                       : b.tag,
                                b.set, b.expr});
            } else {
                std::vector<std::string> live;
                for (const auto& adj : topo.neighbors(*node_id))
                    if (topo.link_up(adj.link))
                        live.push_back(topo.node(adj.node).name);
                if (live.size() == 1) {
                    hops.push_back({live.front(), b.tag, b.set, b.expr});
                } else if (live.size() == 2 &&
                           std::find(live.begin(), live.end(), b.prev) !=
                               live.end()) {
                    hops.push_back({live.front() == b.prev ? live.back()
                                                           : live.front(),
                                    b.tag, b.set, b.expr});
                } else {
                    diag("middlebox-stuck",
                         "middlebox '" + b.device +
                             "' has no deterministic way out for tag " +
                             std::to_string(b.tag),
                         b.expr);
                    continue;
                }
            }
        } else {
            // Switch: walk the priority bands, splitting the set over the
            // rules that match part of it; what no rule claims blackholes.
            bdd::Node remaining = b.set;
            ir::PredPtr remaining_expr = b.expr;
            const auto table = lifted.rules.find(b.device);
            if (table != lifted.rules.end()) {
                for (const codegen::Flow_rule* rule : table->second) {
                    if (remaining == bdd::kFalse) break;
                    if (rule->match_tag && *rule->match_tag != b.tag)
                        continue;
                    if (rule->match_dst_mac &&
                        *rule->match_dst_mac != cls.dst_mac)
                        continue;
                    const bdd::Node part = mgr.apply_and(
                        remaining, analyzer.compile(pred_of(*rule)));
                    if (part == bdd::kFalse) continue;
                    const ir::PredPtr part_expr =
                        ir::pred_and(remaining_expr, pred_of(*rule));
                    remaining = mgr.apply_and(
                        remaining,
                        mgr.negate(analyzer.compile(pred_of(*rule))));
                    remaining_expr = ir::pred_and(
                        remaining_expr, ir::pred_not(pred_of(*rule)));
                    if (rule->drop) {
                        diag("unexpected-drop",
                             "is dropped at '" + b.device + "'", part_expr);
                        continue;
                    }
                    if (rule->out_port.empty()) {
                        diag("blackhole",
                             "matches an actionless rule at '" + b.device +
                                 "'",
                             part_expr);
                        continue;
                    }
                    int tag = b.tag;
                    if (rule->set_tag) tag = *rule->set_tag;
                    if (rule->strip_tag) tag = -1;
                    hops.push_back({rule->out_port, tag, part, part_expr});
                }
            }
            if (remaining != bdd::kFalse)
                diag("blackhole",
                     "has no matching rule at '" + b.device + "'",
                     remaining_expr);
        }

        for (Hop& hop : hops) {
            const auto next_id = topo.find(hop.next);
            if (!next_id) {
                diag("failed-link",
                     "is forwarded from '" + b.device + "' to unknown '" +
                         hop.next + "'",
                     hop.expr);
                continue;
            }
            const auto link = topo.link_between(*node_id, *next_id);
            if (!link || !topo.link_up(*link)) {
                diag("failed-link",
                     "is forwarded from '" + b.device + "' to '" + hop.next +
                         "' over a " +
                         (link ? "failed" : "nonexistent") + " link",
                     hop.expr);
                continue;
            }
            Branch next;
            next.device = std::move(hop.next);
            next.prev = b.device;
            next.tag = hop.tag;
            next.set = hop.set;
            next.expr = std::move(hop.expr);
            next.path = b.path;
            next.visited = b.visited;
            next.ttl = b.ttl;
            work.push_back(std::move(next));
        }
    }
    return delivered;
}

// --------------------------------------------------------- class selection

const core::Statement_plan* find_plan(const core::Compilation& comp,
                                      const std::string& id) {
    for (const core::Statement_plan& plan : comp.plans)
        if (plan.statement.id == id) return &plan;
    return nullptr;
}

// A guaranteed path through a multi-link middlebox with no Click forward
// resolves by passthrough, which is only deterministic over a single link:
// skip such statements, exactly as the replay oracle does.
bool passthrough_ambiguous(const core::Statement_plan& plan,
                           const topo::Topology& topo) {
    if (!plan.path) return false;
    for (const topo::NodeId n : plan.path->nodes) {
        if (topo.node(n).kind != topo::Node_kind::middlebox) continue;
        int live = 0;
        for (const auto& adj : topo.neighbors(n))
            if (topo.link_up(adj.link)) ++live;
        if (live > 1) return true;
    }
    return false;
}

// The first switch of a guaranteed plan's provisioned path (its one
// classification point); kNoNode for best-effort plans.
topo::NodeId classify_switch(const core::Statement_plan& plan,
                             const topo::Topology& topo) {
    if (!plan.path) return topo::kNoNode;
    for (const topo::NodeId n : plan.path->nodes)
        if (topo.node(n).kind == topo::Node_kind::switch_) return n;
    return topo::kNoNode;
}

std::vector<std::string> edge_switches(topo::NodeId src,
                                       const topo::Topology& topo) {
    std::vector<std::string> out;
    for (const auto& adj : topo.neighbors(src))
        if (topo.node(adj.node).kind == topo::Node_kind::switch_ &&
            topo.link_up(adj.link))
            out.push_back(topo.node(adj.node).name);
    return out;
}

// The checkable classes of one compilation: pinned, non-drop, non-default
// statements with a deterministic passthrough and a known ingress.
std::vector<Class_check> select_classes(const core::Compilation& comp,
                                        const topo::Topology& topo,
                                        pred::Analyzer& analyzer) {
    // Per-plan satisfiability through the shared predicate DAG: one group
    // per distinct predicate function, so 100k statements over a small
    // predicate pool cost one BDD compile per *distinct* predicate.
    std::vector<ir::PredPtr> preds;
    preds.reserve(comp.plans.size());
    for (const core::Statement_plan& plan : comp.plans)
        preds.push_back(plan.statement.predicate);
    const pred::Classifier classifier(analyzer, preds);
    std::vector<Class_check> out;
    for (std::size_t p = 0; p < comp.plans.size(); ++p) {
        const core::Statement_plan& plan = comp.plans[p];
        if (plan.statement.id == "__default" || plan.drop) continue;
        if (!plan.src_host || !plan.dst_host) continue;
        if (passthrough_ambiguous(plan, topo)) continue;
        if (classifier.group_root(classifier.group_of(p)) == bdd::kFalse)
            continue;
        Class_check cls;
        cls.id = plan.statement.id;
        cls.predicate = plan.statement.predicate;
        cls.dst_mac = comp.addressing.mac(*plan.dst_host);
        cls.dst_name = topo.node(*plan.dst_host).name;
        const topo::NodeId ingress = classify_switch(plan, topo);
        if (ingress != topo::kNoNode)
            cls.ingresses.push_back(topo.node(ingress).name);
        else if (!plan.path)
            cls.ingresses = edge_switches(*plan.src_host, topo);
        if (cls.ingresses.empty()) continue;
        out.push_back(std::move(cls));
    }
    return out;
}

}  // namespace

// ----------------------------------------------------------------- entries

Report check_tables(const codegen::Configuration& config,
                    const topo::Topology& topo) {
    (void)topo;
    Report report;
    pred::Analyzer analyzer;
    check_device_tables(Lifted(config), analyzer, report);
    return report;
}

Report check_dataplane(const core::Compilation& compilation,
                       const codegen::Configuration& config,
                       const topo::Topology& topo) {
    Report report;
    pred::Analyzer analyzer;
    const Lifted lifted(config);
    check_device_tables(lifted, analyzer, report);
    for (const Class_check& cls : select_classes(compilation, topo, analyzer))
        for (const std::string& ingress : cls.ingresses)
            propagate(lifted, topo, analyzer, cls, ingress, "", report);
    return report;
}

Report check_update(const core::Compilation& old_comp,
                    const core::Compilation& new_comp,
                    const codegen::Configuration& old_config,
                    const codegen::Diff& diff,
                    const codegen::Configuration& new_config,
                    const topo::Topology& topo) {
    Report report = check_dataplane(new_comp, new_config, topo);

    codegen::Configuration prepared = old_config;
    codegen::apply_prepare(prepared, diff);
    codegen::Configuration committed = prepared;
    codegen::apply_commit(committed, diff);
    const Lifted lifted[4] = {Lifted(old_config), Lifted(prepared),
                              Lifted(committed), Lifted(new_config)};
    static const char* const kPhase[4] = {"pre-update", "after prepare",
                                          "after commit", "post-update"};

    pred::Analyzer analyzer;
    bdd::Manager& mgr = analyzer.manager();

    // A class is replayed across phases only when stable: present in both
    // compilations with the same predicate, not dropped on either side, and
    // with an unmoved classification point (a reroute legitimately leaves
    // the old ingress without a classifier mid-update).
    for (Class_check cls : select_classes(new_comp, topo, analyzer)) {
        const core::Statement_plan* old_plan = find_plan(old_comp, cls.id);
        const core::Statement_plan* new_plan = find_plan(new_comp, cls.id);
        if (old_plan == nullptr || old_plan->drop) continue;
        if (!ir::equal(old_plan->statement.predicate, cls.predicate))
            continue;
        if (passthrough_ambiguous(*old_plan, topo)) continue;
        const topo::NodeId old_ingress = classify_switch(*old_plan, topo);
        const topo::NodeId new_ingress = classify_switch(*new_plan, topo);
        if (old_ingress != topo::kNoNode || new_ingress != topo::kNoNode) {
            if (old_ingress != new_ingress) continue;
            cls.ingresses = {topo.node(new_ingress).name};
        }

        for (const std::string& ingress : cls.ingresses) {
            std::vector<Delivery> phases[4];
            bool complete = true;
            for (int p = 0; p < 4; ++p) {
                const std::size_t before = report.size();
                phases[p] = propagate(lifted[p], topo, analyzer, cls,
                                      ingress, kPhase[p], report);
                if (report.size() != before) complete = false;
            }
            if (!complete) continue;
            // Per-packet consistency: any header in two delivered slices of
            // adjacent phase pairs must have taken the same route.
            const auto blend = [&](int first, int second,
                                   const char* message) {
                for (const Delivery& da : phases[first])
                    for (const Delivery& db : phases[second]) {
                        if (da.path == db.path) continue;
                        const bdd::Node both = mgr.apply_and(da.set, db.set);
                        if (both == bdd::kFalse) continue;
                        report.push_back(
                            {Severity::error, "update-blend", cls.id,
                             "two-phase update of '" + cls.id + "' from " +
                                 ingress + ": " + message,
                             packet_witness(analyzer,
                                            ir::pred_and(da.expr, db.expr))});
                        return;
                    }
            };
            blend(0, 1,
                  "after prepare the packet leaves its pre-update path "
                  "(old/new mix)");
            blend(3, 2,
                  "after commit the packet is not yet on its post-update "
                  "path (old/new mix)");
        }
    }
    return report;
}

Report Update_checker::step(const core::Compilation& compilation,
                            const topo::Topology& topo,
                            bool check_transition) {
    const codegen::Diff diff = incremental_.update(compilation, topo);
    const codegen::Configuration& config = incremental_.config();
    Report report =
        seeded_ && check_transition
            ? check_update(previous_, compilation, previous_config_, diff,
                           config, topo)
            : check_dataplane(compilation, config, topo);
    previous_ = compilation;
    previous_config_ = config;
    seeded_ = true;
    return report;
}

}  // namespace merlin::analysis
