// The refinement verifier: the paper's Section 4.2 delegation check,
// producing a full diagnostic report instead of a first-failure verdict.
//
// `refined` is a valid refinement of `original` iff the report carries no
// errors. The checks, in report order:
//
//   refine-totality      error  the refined statements do not cover all
//                               traffic of the original (partition must be
//                               total); witness: an uncovered packet
//   refine-extra-traffic error  the refinement claims traffic outside the
//                               original policy; witness: a claimed packet
//   refine-partition     error  two refined statements overlap (a partition
//                               requires disjoint predicates); witness: a
//                               packet both match
//   refine-path-escape   error  a refined statement with traffic inside an
//                               original statement allows paths outside the
//                               original's language; witness: a shortest
//                               escaping location word
//   refine-bandwidth     error  per original constraint term: summed refined
//                               caps above the term's cap, an uncapped child
//                               under a capped term, or summed refined
//                               guarantees below the term's guarantee
//
// Predicate reasoning is BDD-based and path-language inclusion is decided by
// product-automaton emptiness (child ∩ ¬parent), as in negotiator/verify.h —
// which now delegates here.
#pragma once

#include "analysis/analysis.h"
#include "automata/automata.h"
#include "ir/ast.h"

namespace merlin::analysis {

// Throws Policy_error when either policy's formula uses or/! (the bandwidth
// comparison needs positive-conjunction form), matching the negotiator.
[[nodiscard]] Report check_refinement(const ir::Policy& original,
                                      const ir::Policy& refined,
                                      const automata::Alphabet& alphabet);

}  // namespace merlin::analysis
