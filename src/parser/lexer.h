// Lexer for the Merlin policy language.
//
// Most tokens are conventional. Two token classes cannot be lexed context-
// free because their characters collide with punctuation: field values
// (MACs contain ':', IPv4s contain '.') and rates ("50MB/s" contains '/').
// The parser therefore switches the lexer into a raw "value" mode exactly
// where the grammar expects a value or rate (`next_value()`), following the
// usual hand-written-lexer idiom for such grammars.
//
// Two tokens of lookahead are provided: statements are newline-insensitive,
// so the path parser needs `peek2()` to tell a path symbol from the id of the
// following statement (`... -> .* y : ...`).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

namespace merlin::parser {

enum class Token_kind : std::uint8_t {
    identifier,  // also keywords; parser checks the text
    number,
    string,    // "..." payload literal
    lbracket,  // [
    rbracket,  // ]
    lparen,    // (
    rparen,    // )
    lbrace,    // {
    rbrace,    // }
    comma,
    semicolon,
    colon,     // :
    assign,    // :=
    arrow,     // ->
    eq,        // =
    neq,       // !=
    bang,      // !
    star,      // *
    dot,       // .
    pipe,      // |
    plus,      // +
    eof,
};

[[nodiscard]] const char* to_string(Token_kind kind);

struct Token {
    Token_kind kind = Token_kind::eof;
    std::string text;
    int line = 1;
    int column = 1;
    // Offset of the first character in the source; used by value-mode rewind.
    std::size_t offset = 0;
};

class Lexer {
public:
    explicit Lexer(std::string_view source);

    // Current / following token (EOF repeats forever).
    [[nodiscard]] const Token& peek();
    [[nodiscard]] const Token& peek2();
    // Consumes and returns the current token.
    Token next();

    // Re-lexes from the *start* of the current token in raw value mode:
    // consumes a maximal run of [A-Za-z0-9:./_] and returns it as one token.
    // Used for field values (00:00:00:00:00:01, 192.168.1.1, 0x50, tcp)
    // and rates (50MB/s).
    Token next_value();

private:
    void skip_trivia();
    Token lex();
    void fill(std::size_t count);
    [[nodiscard]] char at(std::size_t i) const {
        return i < source_.size() ? source_[i] : '\0';
    }

    std::string_view source_;
    std::size_t pos_ = 0;
    int line_ = 1;
    int column_ = 1;
    std::deque<Token> buffer_;
};

}  // namespace merlin::parser
