#include "parser/lexer.h"

#include <cctype>

#include "util/error.h"

namespace merlin::parser {

const char* to_string(Token_kind kind) {
    switch (kind) {
        case Token_kind::identifier: return "identifier";
        case Token_kind::number: return "number";
        case Token_kind::string: return "string";
        case Token_kind::lbracket: return "'['";
        case Token_kind::rbracket: return "']'";
        case Token_kind::lparen: return "'('";
        case Token_kind::rparen: return "')'";
        case Token_kind::lbrace: return "'{'";
        case Token_kind::rbrace: return "'}'";
        case Token_kind::comma: return "','";
        case Token_kind::semicolon: return "';'";
        case Token_kind::colon: return "':'";
        case Token_kind::assign: return "':='";
        case Token_kind::arrow: return "'->'";
        case Token_kind::eq: return "'='";
        case Token_kind::neq: return "'!='";
        case Token_kind::bang: return "'!'";
        case Token_kind::star: return "'*'";
        case Token_kind::dot: return "'.'";
        case Token_kind::pipe: return "'|'";
        case Token_kind::plus: return "'+'";
        case Token_kind::eof: return "end of input";
    }
    return "?";
}

Lexer::Lexer(std::string_view source) : source_(source) {}

void Lexer::fill(std::size_t count) {
    while (buffer_.size() < count) buffer_.push_back(lex());
}

const Token& Lexer::peek() {
    fill(1);
    return buffer_[0];
}

const Token& Lexer::peek2() {
    fill(2);
    return buffer_[1];
}

Token Lexer::next() {
    fill(1);
    Token out = buffer_.front();
    buffer_.pop_front();
    return out;
}

void Lexer::skip_trivia() {
    while (pos_ < source_.size()) {
        const char c = source_[pos_];
        if (c == '\n') {
            ++line_;
            column_ = 1;
            ++pos_;
        } else if (std::isspace(static_cast<unsigned char>(c))) {
            ++column_;
            ++pos_;
        } else if (c == '#') {
            while (pos_ < source_.size() && source_[pos_] != '\n') ++pos_;
        } else {
            break;
        }
    }
}

Token Lexer::lex() {
    skip_trivia();

    Token t;
    t.line = line_;
    t.column = column_;
    t.offset = pos_;
    if (pos_ >= source_.size()) {
        t.kind = Token_kind::eof;
        return t;
    }

    const char c = source_[pos_];
    auto take = [&](Token_kind kind, int len) {
        t.kind = kind;
        t.text = std::string(source_.substr(pos_, static_cast<std::size_t>(len)));
        pos_ += static_cast<std::size_t>(len);
        column_ += len;
        return t;
    };

    switch (c) {
        case '[': return take(Token_kind::lbracket, 1);
        case ']': return take(Token_kind::rbracket, 1);
        case '(': return take(Token_kind::lparen, 1);
        case ')': return take(Token_kind::rparen, 1);
        case '{': return take(Token_kind::lbrace, 1);
        case '}': return take(Token_kind::rbrace, 1);
        case ',': return take(Token_kind::comma, 1);
        case ';': return take(Token_kind::semicolon, 1);
        case '*': return take(Token_kind::star, 1);
        case '.': return take(Token_kind::dot, 1);
        case '|': return take(Token_kind::pipe, 1);
        case '+': return take(Token_kind::plus, 1);
        case '=': return take(Token_kind::eq, 1);
        case ':':
            return at(pos_ + 1) == '=' ? take(Token_kind::assign, 2)
                                       : take(Token_kind::colon, 1);
        case '!':
            return at(pos_ + 1) == '=' ? take(Token_kind::neq, 2)
                                       : take(Token_kind::bang, 1);
        case '-':
            if (at(pos_ + 1) == '>') return take(Token_kind::arrow, 2);
            throw Parse_error("unexpected '-'", line_, column_);
        case '"': {
            std::size_t end = pos_ + 1;
            while (end < source_.size() && source_[end] != '"' &&
                   source_[end] != '\n')
                ++end;
            if (end >= source_.size() || source_[end] != '"')
                throw Parse_error("unterminated string literal", line_,
                                  column_);
            t.kind = Token_kind::string;
            t.text = std::string(source_.substr(pos_ + 1, end - pos_ - 1));
            column_ += static_cast<int>(end + 1 - pos_);
            pos_ = end + 1;
            return t;
        }
        default: break;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
        std::size_t end = pos_;
        while (end < source_.size() &&
               std::isdigit(static_cast<unsigned char>(source_[end])))
            ++end;
        t.kind = Token_kind::number;
        t.text = std::string(source_.substr(pos_, end - pos_));
        column_ += static_cast<int>(end - pos_);
        pos_ = end;
        return t;
    }

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::size_t end = pos_;
        while (end < source_.size() &&
               (std::isalnum(static_cast<unsigned char>(source_[end])) ||
                source_[end] == '_'))
            ++end;
        t.kind = Token_kind::identifier;
        t.text = std::string(source_.substr(pos_, end - pos_));
        column_ += static_cast<int>(end - pos_);
        pos_ = end;
        return t;
    }

    throw Parse_error(std::string("unexpected character '") + c + "'", line_,
                      column_);
}

Token Lexer::next_value() {
    // Rewind to the beginning of the current token and re-lex raw. Any
    // buffered lookahead is discarded (it was lexed with normal rules).
    fill(1);
    const Token& head = buffer_.front();
    if (head.kind == Token_kind::eof)
        throw Parse_error("expected a value, found end of input", head.line,
                          head.column);
    pos_ = head.offset;
    line_ = head.line;
    column_ = head.column;
    buffer_.clear();

    Token t;
    t.line = line_;
    t.column = column_;
    t.offset = pos_;
    std::size_t end = pos_;
    auto is_value_char = [](char ch) {
        return std::isalnum(static_cast<unsigned char>(ch)) || ch == ':' ||
               ch == '.' || ch == '/' || ch == '_';
    };
    while (end < source_.size() && is_value_char(source_[end])) ++end;
    if (end == pos_) throw Parse_error("expected a value", line_, column_);
    t.kind = Token_kind::identifier;
    t.text = std::string(source_.substr(pos_, end - pos_));
    column_ += static_cast<int>(end - pos_);
    pos_ = end;
    return t;
}

}  // namespace merlin::parser
