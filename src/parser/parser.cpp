#include "parser/parser.h"

#include <map>
#include <set>
#include <vector>

#include "ir/fields.h"
#include "parser/lexer.h"
#include "util/error.h"
#include "util/strings.h"

namespace merlin::parser {
namespace {

using namespace merlin::ir;

bool is_keyword(const std::string& text) {
    static const std::set<std::string> kw{"and", "or",  "true",    "false",
                                          "max", "min", "at",      "foreach",
                                          "in",  "cross", "payload"};
    return kw.contains(text);
}

class Parser {
public:
    explicit Parser(const std::string& source) : lexer_(source) {}

    Policy policy() {
        Policy out;
        while (!at(Token_kind::eof)) {
            if (accept(Token_kind::comma)) continue;
            if (at(Token_kind::lbracket)) {
                statement_block(out);
            } else if (at_keyword("foreach")) {
                foreach_clause(out);
            } else if (at(Token_kind::identifier) &&
                       !is_keyword(lexer_.peek().text)) {
                set_definition();
            } else {
                // Must be a formula (max/min/!/parenthesized).
                FormulaPtr f = formula();
                out.formula = out.formula ? formula_and(out.formula, f) : f;
            }
        }
        check_unique_ids(out);
        return out;
    }

    PredPtr predicate_only() {
        PredPtr p = predicate();
        expect_eof();
        return p;
    }

    PathPtr path_only() {
        PathPtr p = path();
        expect_eof();
        return p;
    }

    FormulaPtr formula_only() {
        FormulaPtr f = formula();
        expect_eof();
        return f;
    }

private:
    // ------------------------------------------------------------- helpers
    [[nodiscard]] bool at(Token_kind kind) {
        return lexer_.peek().kind == kind;
    }
    [[nodiscard]] bool at_keyword(const char* word) {
        return at(Token_kind::identifier) && lexer_.peek().text == word;
    }
    bool accept(Token_kind kind) {
        if (!at(kind)) return false;
        lexer_.next();
        return true;
    }
    bool accept_keyword(const char* word) {
        if (!at_keyword(word)) return false;
        lexer_.next();
        return true;
    }
    Token expect(Token_kind kind, const char* context) {
        if (!at(kind))
            fail(std::string("expected ") + to_string(kind) + " " + context +
                 ", found '" + lexer_.peek().text + "'");
        return lexer_.next();
    }
    void expect_keyword(const char* word, const char* context) {
        if (!at_keyword(word))
            fail(std::string("expected '") + word + "' " + context);
        lexer_.next();
    }
    void expect_eof() {
        if (!at(Token_kind::eof))
            fail("unexpected trailing input: '" + lexer_.peek().text + "'");
    }
    [[noreturn]] void fail(const std::string& message) {
        throw Parse_error(message, lexer_.peek().line, lexer_.peek().column);
    }

    // ---------------------------------------------------------- predicates
    PredPtr predicate() { return pred_or_level(); }

    PredPtr pred_or_level() {
        PredPtr left = pred_and_level();
        while (accept_keyword("or") || accept(Token_kind::pipe))
            left = pred_or(left, pred_and_level());
        return left;
    }

    PredPtr pred_and_level() {
        PredPtr left = pred_not_level();
        while (accept_keyword("and")) left = pred_and(left, pred_not_level());
        return left;
    }

    PredPtr pred_not_level() {
        if (accept(Token_kind::bang)) return pred_not(pred_not_level());
        return pred_atom();
    }

    PredPtr pred_atom() {
        if (accept(Token_kind::lparen)) {
            PredPtr inner = predicate();
            expect(Token_kind::rparen, "to close predicate");
            return inner;
        }
        if (accept_keyword("true")) return pred_true();
        if (accept_keyword("false")) return pred_false();
        if (accept_keyword("payload")) {
            expect(Token_kind::eq, "after 'payload'");
            const Token lit = expect(Token_kind::string, "payload pattern");
            return pred_payload(lit.text);
        }
        if (!at(Token_kind::identifier))
            fail("expected a predicate, found '" + lexer_.peek().text + "'");

        // Field reference: IDENT or IDENT '.' IDENT (or camel alias).
        const Token head = lexer_.next();
        std::string name = head.text;
        if (accept(Token_kind::dot)) {
            const Token tail =
                expect(Token_kind::identifier, "after '.' in field name");
            name += "." + tail.text;
        }
        const auto field = find_field(name);
        if (!field)
            throw Parse_error("unknown header field '" + name + "'", head.line,
                              head.column);
        const bool negated = [&] {
            if (accept(Token_kind::neq)) return true;
            expect(Token_kind::eq, "in field test");
            return false;
        }();
        const Token raw = lexer_.next_value();
        const auto value = parse_field_value(*field, raw.text);
        if (!value)
            throw Parse_error("invalid value '" + raw.text + "' for field " +
                                  field->name,
                              raw.line, raw.column);
        PredPtr test = pred_test(field->name, *value);
        return negated ? pred_not(test) : test;
    }

    // ---------------------------------------------------------------- paths
    PathPtr path() { return path_alt_level(); }

    PathPtr path_alt_level() {
        PathPtr left = path_seq_level();
        while (accept(Token_kind::pipe)) left = path_alt(left, path_seq_level());
        return left;
    }

    [[nodiscard]] bool starts_path_atom() {
        if (at(Token_kind::dot) || at(Token_kind::lparen) ||
            at(Token_kind::bang))
            return true;
        if (!at(Token_kind::identifier) || is_keyword(lexer_.peek().text))
            return false;
        // An identifier followed by ':' is the id of the next statement, and
        // one followed by ':=' starts a set definition — not a path symbol.
        const Token_kind after = lexer_.peek2().kind;
        return after != Token_kind::colon && after != Token_kind::assign;
    }

    PathPtr path_seq_level() {
        PathPtr left = path_unary_level();
        while (starts_path_atom()) left = path_seq(left, path_unary_level());
        return left;
    }

    PathPtr path_unary_level() {
        if (accept(Token_kind::bang)) {
            PathPtr inner = path_unary_level();
            return path_not(inner);
        }
        PathPtr atom = path_atom();
        while (accept(Token_kind::star)) atom = path_star(atom);
        return atom;
    }

    PathPtr path_atom() {
        if (accept(Token_kind::dot)) return path_any();
        if (accept(Token_kind::lparen)) {
            PathPtr inner = path();
            expect(Token_kind::rparen, "to close path expression");
            return inner;
        }
        if (at(Token_kind::identifier) && !is_keyword(lexer_.peek().text))
            return path_symbol(lexer_.next().text);
        fail("expected a path expression, found '" + lexer_.peek().text + "'");
    }

    // ------------------------------------------------------------- formulas
    FormulaPtr formula() { return formula_or_level(); }

    FormulaPtr formula_or_level() {
        FormulaPtr left = formula_and_level();
        while (accept_keyword("or"))
            left = formula_or(left, formula_and_level());
        return left;
    }

    FormulaPtr formula_and_level() {
        FormulaPtr left = formula_not_level();
        while (accept_keyword("and"))
            left = formula_and(left, formula_not_level());
        return left;
    }

    FormulaPtr formula_not_level() {
        if (accept(Token_kind::bang)) return formula_not(formula_not_level());
        return formula_atom();
    }

    FormulaPtr formula_atom() {
        if (accept(Token_kind::lparen)) {
            FormulaPtr inner = formula();
            expect(Token_kind::rparen, "to close formula");
            return inner;
        }
        const bool is_max = at_keyword("max");
        if (!is_max && !at_keyword("min"))
            fail("expected max(...) or min(...), found '" +
                 lexer_.peek().text + "'");
        lexer_.next();
        expect(Token_kind::lparen, "after max/min");
        Term t = term();
        expect(Token_kind::comma, "between term and rate");
        const Bandwidth rate = rate_value();
        expect(Token_kind::rparen, "to close max/min");
        return is_max ? formula_max(std::move(t), rate)
                      : formula_min(std::move(t), rate);
    }

    Term term() {
        Term t;
        term_atom(t);
        while (accept(Token_kind::plus)) term_atom(t);
        return t;
    }

    void term_atom(Term& t) {
        if (at(Token_kind::number)) {
            // A literal contribution, possibly with a unit ("10MB/s").
            t.constant += rate_value().bps();
            return;
        }
        if (at(Token_kind::identifier) && !is_keyword(lexer_.peek().text)) {
            t.ids.push_back(lexer_.next().text);
            return;
        }
        fail("expected identifier or literal in bandwidth term");
    }

    Bandwidth rate_value() {
        const Token raw = lexer_.next_value();
        try {
            return parse_bandwidth(raw.text);
        } catch (const Parse_error&) {
            throw Parse_error("invalid rate '" + raw.text + "'", raw.line,
                              raw.column);
        }
    }

    // --------------------------------------------------- statements & sugar
    void statement_block(Policy& out) {
        expect(Token_kind::lbracket, "to open statement block");
        while (true) {
            statement(out);
            accept(Token_kind::semicolon);
            if (accept(Token_kind::rbracket)) break;
            if (at(Token_kind::eof)) fail("unterminated statement block");
        }
    }

    void statement(Policy& out) {
        const Token id = expect(Token_kind::identifier, "as statement id");
        if (is_keyword(id.text))
            throw Parse_error("reserved word '" + id.text +
                                  "' cannot name a statement",
                              id.line, id.column);
        expect(Token_kind::colon, "after statement id");
        PredPtr pred = predicate();
        expect(Token_kind::arrow, "between predicate and path");
        PathPtr p = path();
        out.statements.push_back(Statement{id.text, std::move(pred),
                                           std::move(p)});
        attach_rate_clause(out, id.text);
    }

    // Optional `at max(RATE)` / `at min(RATE)` after a statement body.
    void attach_rate_clause(Policy& out, const std::string& id) {
        if (!accept_keyword("at")) return;
        const bool is_max = at_keyword("max");
        if (!is_max && !at_keyword("min"))
            fail("expected max(...) or min(...) after 'at'");
        lexer_.next();
        expect(Token_kind::lparen, "after max/min");
        const Bandwidth rate = rate_value();
        expect(Token_kind::rparen, "to close rate clause");
        Term t;
        t.ids.push_back(id);
        FormulaPtr f = is_max ? formula_max(std::move(t), rate)
                              : formula_min(std::move(t), rate);
        out.formula = out.formula ? formula_and(out.formula, f) : f;
    }

    void set_definition() {
        const Token name = expect(Token_kind::identifier, "as set name");
        expect(Token_kind::assign, "in set definition");
        expect(Token_kind::lbrace, "to open set literal");
        std::vector<std::string> values;
        if (!at(Token_kind::rbrace)) {
            values.push_back(lexer_.next_value().text);
            while (accept(Token_kind::comma))
                values.push_back(lexer_.next_value().text);
        }
        expect(Token_kind::rbrace, "to close set literal");
        sets_[name.text] = std::move(values);
    }

    const std::vector<std::string>& lookup_set(const Token& name) {
        const auto it = sets_.find(name.text);
        if (it == sets_.end())
            throw Parse_error("unknown set '" + name.text + "'", name.line,
                              name.column);
        return it->second;
    }

    // foreach (s,d) in cross(A,B): pred -> path [at max/min(rate)]
    void foreach_clause(Policy& out) {
        expect_keyword("foreach", "");
        expect(Token_kind::lparen, "after foreach");
        expect(Token_kind::identifier, "as source variable");
        expect(Token_kind::comma, "between loop variables");
        expect(Token_kind::identifier, "as destination variable");
        expect(Token_kind::rparen, "to close loop variables");
        expect_keyword("in", "after loop variables");
        expect_keyword("cross", "after 'in'");
        expect(Token_kind::lparen, "after cross");
        const Token set_a = expect(Token_kind::identifier, "as first set");
        expect(Token_kind::comma, "between cross arguments");
        const Token set_b = expect(Token_kind::identifier, "as second set");
        expect(Token_kind::rparen, "to close cross");
        expect(Token_kind::colon, "before foreach body");

        PredPtr body_pred = predicate();
        expect(Token_kind::arrow, "between predicate and path");
        PathPtr body_path = path();

        // Optional rate clause applies to every generated statement.
        bool has_rate = false;
        bool is_max = false;
        Bandwidth rate;
        if (accept_keyword("at")) {
            is_max = at_keyword("max");
            if (!is_max && !at_keyword("min"))
                fail("expected max(...) or min(...) after 'at'");
            lexer_.next();
            expect(Token_kind::lparen, "after max/min");
            rate = rate_value();
            expect(Token_kind::rparen, "to close rate clause");
            has_rate = true;
        }

        const auto& src_values = lookup_set(set_a);
        const auto& dst_values = lookup_set(set_b);
        for (const std::string& s : src_values) {
            for (const std::string& d : dst_values) {
                if (s == d) continue;  // self-pairs need no provisioning
                Statement stmt;
                stmt.id = indexed("g", generated_counter_++);
                stmt.predicate =
                    pred_and(endpoint_test(s, /*source=*/true),
                             endpoint_test(d, /*source=*/false));
                if (body_pred->kind != Pred_kind::true_)
                    stmt.predicate = pred_and(stmt.predicate, body_pred);
                stmt.path = body_path;
                if (has_rate) {
                    Term t;
                    t.ids.push_back(stmt.id);
                    FormulaPtr f = is_max ? formula_max(std::move(t), rate)
                                          : formula_min(std::move(t), rate);
                    out.formula =
                        out.formula ? formula_and(out.formula, f) : f;
                }
                out.statements.push_back(std::move(stmt));
            }
        }
    }

    // Builds eth.src/eth.dst or ip.src/ip.dst test from a set literal.
    PredPtr endpoint_test(const std::string& literal, bool source) {
        const Field eth = *find_field(source ? "eth.src" : "eth.dst");
        if (const auto mac = parse_field_value(eth, literal);
            mac && literal.find(':') != std::string::npos)
            return pred_test(eth.name, *mac);
        const Field ip = *find_field(source ? "ip.src" : "ip.dst");
        if (const auto addr = parse_field_value(ip, literal);
            addr && literal.find('.') != std::string::npos)
            return pred_test(ip.name, *addr);
        fail("set element '" + literal +
             "' is neither a MAC nor an IPv4 address");
    }

    void check_unique_ids(const Policy& out) const {
        std::set<std::string> seen;
        for (const Statement& s : out.statements)
            if (!seen.insert(s.id).second)
                throw Parse_error("duplicate statement id '" + s.id + "'", 0,
                                  0);
    }

    Lexer lexer_;
    std::map<std::string, std::vector<std::string>> sets_;
    int generated_counter_ = 0;
};

}  // namespace

ir::Policy parse_policy(const std::string& source) {
    return Parser(source).policy();
}

ir::PredPtr parse_predicate(const std::string& source) {
    return Parser(source).predicate_only();
}

ir::PathPtr parse_path(const std::string& source) {
    return Parser(source).path_only();
}

ir::FormulaPtr parse_formula(const std::string& source) {
    return Parser(source).formula_only();
}

}  // namespace merlin::parser
