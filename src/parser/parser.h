// Recursive-descent parser for Merlin policies (grammar of Figure 1 plus the
// syntactic sugar of Section 2.1: set literals, cross(), foreach, and `at`
// rate clauses).
//
// Program structure accepted:
//
//   srcs := {00:00:00:00:00:01}                  # set definition
//   dsts := {00:00:00:00:00:02}
//   foreach (s,d) in cross(srcs,dsts):           # iteration sugar
//     tcp.dst = 80 -> (.* nat .* dpi .*) at max(100MB/s)
//   [ x : tcp.dst = 22 -> .* ;                   # core statements
//     y : tcp.dst = 21 -> .* ],
//   max(x + y, 50MB/s) and min(z, 100MB/s)       # Presburger formula
//
// Reserved words: and or true false max min at foreach in cross payload.
// `foreach` expands to one statement per (s,d) pair with s != d; generated
// statements are named g0, g1, ... and their predicates constrain
// eth.src/eth.dst for MAC literals or ip.src/ip.dst for IPv4 literals.
// Multiple bracket groups are concatenated; multiple formulas are conjoined.
#pragma once

#include <string>

#include "ir/ast.h"

namespace merlin::parser {

// Parses a complete policy program; throws Parse_error with line/column
// diagnostics on malformed input.
[[nodiscard]] ir::Policy parse_policy(const std::string& source);

// Entry points for fragments (used by tests, negotiators, and tools).
[[nodiscard]] ir::PredPtr parse_predicate(const std::string& source);
[[nodiscard]] ir::PathPtr parse_path(const std::string& source);
[[nodiscard]] ir::FormulaPtr parse_formula(const std::string& source);

}  // namespace merlin::parser
