// Code generation (Section 3.4).
//
// Turns a Compilation into per-device instructions:
//
//   * OpenFlow rules for switches. Forwarding uses VLAN tags to encode paths
//     — one tag per (sink tree, NFA state) for best-effort traffic and one
//     tag per provisioned path for guaranteed traffic — so forwarding is
//     robust to header rewrites by middleboxes (the FlowTags-style scheme
//     the paper describes). Ingress switches classify on the statement
//     predicate and push the tag; core switches match only the tag; egress
//     switches strip it and deliver by destination MAC.
//   * Queue configurations on switch ports for bandwidth guarantees.
//   * `tc` commands on end hosts for bandwidth caps.
//   * `iptables` rules on end hosts for dropped traffic classes.
//   * Click configurations for packet-processing functions placed on
//     middleboxes (and host-interpreter programs for host placements).
//
// Figure 4 counts exactly these artifact classes.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/compiler.h"
#include "interp/interp.h"
#include "ir/ast.h"
#include "topo/topology.h"
#include "util/units.h"

namespace merlin::codegen {

// One OpenFlow flow-table entry.
struct Flow_rule {
    std::string device;  // switch name
    int priority = 0;

    // Match side (unset fields are wildcards).
    std::optional<int> match_tag;           // VLAN tag
    ir::PredPtr match;                      // header predicate (ingress)
    std::optional<std::uint64_t> match_dst_mac;

    // Action side.
    bool drop = false;
    std::optional<int> set_tag;    // push/set VLAN
    bool strip_tag = false;
    std::string out_port;          // name of the neighbour to forward to
    std::optional<int> queue;      // enqueue on this port queue
};

struct Queue_config {
    std::string device;    // switch name
    std::string port;      // neighbour name the port faces
    int queue_id = 0;
    Bandwidth min_rate;    // guarantee
    std::optional<Bandwidth> max_rate;  // cap, when present
};

struct Host_command {
    std::string host;
    std::string command;  // a tc(8) or iptables(8) invocation
};

struct Click_config {
    std::string device;    // middlebox or host name
    std::string function;  // dpi, nat, log, ...
    std::string config;    // Click snippet / host-interpreter program
};

struct Configuration {
    std::vector<Flow_rule> flow_rules;
    std::vector<Queue_config> queues;
    std::vector<Host_command> tc_commands;
    std::vector<Host_command> iptables_rules;
    std::vector<Click_config> click_configs;

    [[nodiscard]] int total_instructions() const {
        return static_cast<int>(flow_rules.size() + queues.size() +
                                tc_commands.size() + iptables_rules.size() +
                                click_configs.size());
    }
};

// Generates all device instructions for a feasible compilation.
// Throws Policy_error when called on an infeasible compilation.
[[nodiscard]] Configuration generate(const core::Compilation& compilation,
                                     const topo::Topology& topo);

// Human-readable dump (used by examples and for debugging).
[[nodiscard]] std::string to_text(const Configuration& config);

// Per-host programs for the end-host interpreter backend (Section 3.4's
// netfilter prototype): drops, rate limits (caps), and allows for the
// traffic each host originates. Keys are host names.
[[nodiscard]] std::map<std::string, interp::Program> host_programs(
    const core::Compilation& compilation, const topo::Topology& topo);

}  // namespace merlin::codegen
