// Code generation (Section 3.4).
//
// Turns a Compilation into per-device instructions:
//
//   * OpenFlow rules for switches. Forwarding uses VLAN tags to encode paths
//     — one tag per (sink tree, NFA state) for best-effort traffic and one
//     tag per provisioned path for guaranteed traffic — so forwarding is
//     robust to header rewrites by middleboxes (the FlowTags-style scheme
//     the paper describes). Ingress switches classify on the statement
//     predicate and push the tag; core switches match only the tag; egress
//     switches strip it and deliver by destination MAC.
//   * Queue configurations on switch ports for bandwidth guarantees.
//   * `tc` commands on end hosts for bandwidth caps.
//   * `iptables` rules on end hosts for dropped traffic classes.
//   * Click configurations for packet-processing functions placed on
//     middleboxes (and host-interpreter programs for host placements).
//
// Figure 4 counts exactly these artifact classes.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/compiler.h"
#include "interp/interp.h"
#include "ir/ast.h"
#include "topo/topology.h"
#include "util/units.h"

namespace merlin::codegen {

// Flow-table priority bands (highest wins). The load-bearing invariant —
// asserted by validate() whenever a table is built or a diff is applied —
// is that every tag-matching rule strictly outranks every tag-wildcard
// (predicate-matching) rule on the same device: once a packet carries a
// segment or tree tag its fate is decided by the tag alone, so a path that
// revisits its ingress switch cannot be re-classified by the ingress rule
// it already matched, and no diff application order can reintroduce that
// ambiguity.
inline constexpr int kClassifyPriority = 10;     // predicate -> tag / deliver
inline constexpr int kDropPriority = 12;         // predicate -> drop (edge)
inline constexpr int kTreeForwardPriority = 25;  // tree tag -> forward
inline constexpr int kDeliveryPriority = 28;     // tag + dst mac -> deliver
inline constexpr int kSegmentTagPriority = 31;   // segment tag -> forward
static_assert(kTreeForwardPriority > kDropPriority &&
                  kTreeForwardPriority > kClassifyPriority &&
                  kDeliveryPriority > kTreeForwardPriority &&
                  kSegmentTagPriority > kDeliveryPriority,
              "tag-matching rules must strictly outrank predicate rules");

// The usable 802.1Q tag range: 0 and 1 are reserved, 4095 is the wildcard.
inline constexpr int kMinVlanTag = 2;
inline constexpr int kMaxVlanTag = 4094;

// One OpenFlow flow-table entry.
struct Flow_rule {
    std::string device;  // switch name
    int priority = 0;

    // Match side (unset fields are wildcards).
    std::optional<int> match_tag;           // VLAN tag
    ir::PredPtr match;                      // header predicate (ingress)
    std::optional<std::uint64_t> match_dst_mac;

    // Action side.
    bool drop = false;
    std::optional<int> set_tag;    // push/set VLAN
    bool strip_tag = false;
    std::string out_port;          // name of the neighbour to forward to
    std::optional<int> queue;      // enqueue on this port queue
};

struct Queue_config {
    std::string device;    // switch name
    std::string port;      // neighbour name the port faces
    int queue_id = 0;
    Bandwidth min_rate;    // guarantee
    std::optional<Bandwidth> max_rate;  // cap, when present
};

struct Host_command {
    std::string host;
    std::string command;  // a tc(8) or iptables(8) invocation
};

struct Click_config {
    std::string device;    // middlebox or host name
    std::string function;  // dpi, nat, log, ...
    std::string config;    // Click snippet / host-interpreter program
};

struct Configuration {
    std::vector<Flow_rule> flow_rules;
    std::vector<Queue_config> queues;
    std::vector<Host_command> tc_commands;
    std::vector<Host_command> iptables_rules;
    std::vector<Click_config> click_configs;

    // Classify-rule compression: predicate-matching rules (classify and
    // drop) that were *not* emitted because a statement with a
    // hash-cons-equal predicate BDD already emitted an identical rule on
    // the same device. Emitted rules carry the group's canonical
    // (lexicographically smallest) predicate text, so the shared rule is
    // stable across deltas no matter which group member emits first.
    long long classify_rules_deduped = 0;

    [[nodiscard]] int total_instructions() const {
        return static_cast<int>(flow_rules.size() + queues.size() +
                                tc_commands.size() + iptables_rules.size() +
                                click_configs.size());
    }
};

// Stable name allocator shared by successive generate() calls.
//
// VLAN tags and per-host tc class ids are bound to *identity keys* —
// strings derived from what a rule does (statement id + segment ordinal +
// path node sequence for guaranteed segments; path expression + egress
// switch + NFA state + tree content signature for shared sink trees; host +
// statement id for tc classes) rather than from emission order. After a
// delta, re-generating through the same Naming reuses every name whose
// behaviour is unchanged, which is what makes table diffs minimal and
// two-phase updates sound (changed forwarding behaviour ⇒ fresh tag, so
// in-flight packets finish on the rules that classified them).
//
// The lifecycle is mark-and-sweep: begin_generation() clears the use
// marks, generate() marks every binding it touches, collect_unused()
// releases the rest into a free list and returns the retired VLAN tags.
// Released tags are recycled lowest-first; allocation throws Policy_error
// with a diagnostic when all 4093 usable VLAN ids (2..4094) are live at
// once — previously the counter ran past 4094 and emitted corrupt tables.
class Naming {
public:
    // The tag (or tc class id) bound to `key`, allocating on first use.
    [[nodiscard]] int tag(const std::string& key);
    [[nodiscard]] int host_class(const std::string& host,
                                 const std::string& statement_id);

    // Mark-and-sweep generation lifecycle.
    void begin_generation();
    std::vector<int> collect_unused();  // returns retired VLAN tags, sorted

    // Introspection (diff fingerprints, tests, diagnostics).
    [[nodiscard]] std::size_t live_tags() const { return tags_.size(); }
    [[nodiscard]] int high_water() const { return next_tag_ - 1; }
    [[nodiscard]] std::map<std::string, int> tag_bindings() const;
    // "host|statement id" -> tc class id.
    [[nodiscard]] std::map<std::string, int> class_bindings() const;

private:
    struct Binding {
        int id = 0;
        bool used = true;
    };
    std::map<std::string, Binding> tags_;
    std::set<int> free_tags_;
    int next_tag_ = kMinVlanTag;
    std::map<std::string, Binding> classes_;  // key: "host|statement id"
    std::map<std::string, std::set<int>> free_classes_;  // per host
    std::map<std::string, int> next_class_;              // per host
};

// Generates all device instructions for a feasible compilation.
// Throws Policy_error when called on an infeasible compilation. The
// Naming overload binds tags/class ids through the caller's allocator so
// successive generations produce diff-minimal tables; the two-argument
// form uses a scratch allocator (deterministic batch output).
[[nodiscard]] Configuration generate(const core::Compilation& compilation,
                                     const topo::Topology& topo);
[[nodiscard]] Configuration generate(const core::Compilation& compilation,
                                     const topo::Topology& topo,
                                     Naming& naming);

// Checks the table invariants diff application relies on: every tag is
// within the usable VLAN range, and on every device the lowest-priority
// tag-matching rule still outranks the highest-priority predicate rule.
// Throws Policy_error naming the offending device otherwise. generate()
// and diff application both call this.
void validate(const Configuration& config);

// Human-readable dump (used by examples and for debugging).
[[nodiscard]] std::string to_text(const Configuration& config);
[[nodiscard]] std::string to_text(const Flow_rule& rule);

// Per-host programs for the end-host interpreter backend (Section 3.4's
// netfilter prototype): drops, rate limits (caps), and allows for the
// traffic each host originates. Keys are host names.
[[nodiscard]] std::map<std::string, interp::Program> host_programs(
    const core::Compilation& compilation, const topo::Topology& topo);

}  // namespace merlin::codegen
