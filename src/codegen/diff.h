// Delta-aware code generation: minimal per-device rule diffs between two
// Configurations, ordered as a two-phase consistent update (the paper's §6
// adaptation story meets Reitblatt-style per-packet consistency):
//
//   phase 1 — prepare: install every rule that matches on a tag
//     (forwarding, delivery, segment rules) plus new queues, queue rate
//     changes, new middlebox Click forwards, and new host tc/iptables
//     state. Old traffic is untouched — nothing yet classifies onto the
//     new tags.
//   phase 2 — commit: flip the ingress classifiers (predicate-matching
//     rules): installs, in-place action updates, removals. A packet
//     classified before the flip carries an old tag and completes its
//     journey over pre-update rules; a packet classified after carries a
//     new tag over phase-1 rules. No packet mixes the two or blackholes.
//   phase 3 — cleanup: garbage-collect the rules, queues and Click
//     forwards only old tags reference, and retire those tags into the
//     allocator's free list for reuse.
//
// Rule identity is the match side (device, priority, tag, predicate text,
// dst mac); equal identity with a different action is a modify. Tag rules
// essentially never modify — changed forwarding behaviour produces a fresh
// tag by construction, because Naming keys embed the behaviour — but the
// case is handled for completeness.
#pragma once

#include <string>
#include <vector>

#include "codegen/codegen.h"

namespace merlin::codegen {

struct Rule_update {
    Flow_rule before, after;
};
struct Queue_update {
    Queue_config before, after;
};

struct Diff {
    // Phase 1 — prepare (new tags become routable; old traffic unaffected).
    std::vector<Flow_rule> tag_installs;
    std::vector<Rule_update> tag_updates;
    std::vector<Queue_config> queue_installs;
    std::vector<Queue_update> queue_updates;
    std::vector<Click_config> click_installs;
    std::vector<Host_command> tc_installs;
    std::vector<Host_command> iptables_installs;

    // Phase 2 — commit (ingress classifiers flip to the new tags).
    std::vector<Flow_rule> classifier_installs;
    std::vector<Rule_update> classifier_updates;
    std::vector<Flow_rule> classifier_removes;

    // Phase 3 — cleanup (only-old-tag state is garbage-collected).
    std::vector<Flow_rule> tag_removes;
    std::vector<Queue_config> queue_removes;
    std::vector<Click_config> click_removes;
    std::vector<Host_command> tc_removes;
    std::vector<Host_command> iptables_removes;
    // Tags referenced by the old configuration but not the new one, sorted.
    std::vector<int> retired_tags;

    // Flow-rule operations only: the "rules touched" the adaptation bench
    // compares against full-table size.
    [[nodiscard]] int rules_touched() const;
    // Every operation, including queues, host commands and Click configs.
    [[nodiscard]] int total_operations() const;
    [[nodiscard]] bool empty() const { return total_operations() == 0; }
};

// Structural comparison. equal() compares canonical forms, so two
// configurations emitted in different orders compare equal iff they hold
// the same instructions.
[[nodiscard]] bool equal(const Flow_rule& a, const Flow_rule& b);
[[nodiscard]] bool equal(const Configuration& a, const Configuration& b);
[[nodiscard]] Configuration canonical(Configuration config);

// The minimal two-phase diff from `old_config` to `new_config`, including
// the config-derived retired-tag set.
[[nodiscard]] Diff diff(const Configuration& old_config,
                        const Configuration& new_config);

// Applies one phase in place (removals and updates locate their targets by
// full equality and throw if absent); apply() runs all three and yields a
// configuration bit-equal — modulo instruction order, which canonical()
// normalizes — to the one the diff was computed against. Each phase leaves
// a table that still passes validate(), which is re-checked after cleanup.
void apply_prepare(Configuration& config, const Diff& d);
void apply_commit(Configuration& config, const Diff& d);
void apply_cleanup(Configuration& config, const Diff& d);
[[nodiscard]] Configuration apply(Configuration config, const Diff& d);

// Human-readable dump, one operation per line, grouped by phase.
[[nodiscard]] std::string to_text(const Diff& d);

// Canonical text with every concrete VLAN tag, queue id and tc class id
// replaced by its Naming identity key: two configurations generated under
// different allocator histories print identically iff they are equal
// modulo name choice. The testgen diff oracle uses this to pin incremental
// generation to a from-scratch batch generate.
[[nodiscard]] std::string keyed_text(const Configuration& config,
                                     const Naming& naming);

// Persistent delta-aware generator: feed it each published Compilation and
// it re-generates through a long-lived Naming, returning the two-phase
// diff from the previously published configuration (everything is an
// install on the first call). Unused names are swept after every update,
// so tags recycle through the free list instead of leaking — the sweep is
// cross-checked against the config-derived retired set.
class Incremental {
public:
    Diff update(const core::Compilation& compilation,
                const topo::Topology& topo);
    [[nodiscard]] const Configuration& config() const { return config_; }
    [[nodiscard]] const Naming& naming() const { return naming_; }

private:
    Naming naming_;
    Configuration config_;
};

}  // namespace merlin::codegen
