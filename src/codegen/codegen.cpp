#include "codegen/codegen.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "ir/fields.h"
#include "pred/analysis.h"
#include "util/error.h"

namespace merlin::codegen {
namespace {

// Renders a predicate as iptables/tc-style match arguments. Simple
// conjunctions map onto native matchers; anything richer falls back to the
// host interpreter's expression matcher (Section 3.4 describes the richer
// netfilter-based interpreter for exactly this case).
std::string render_match(const ir::PredPtr& p) {
    using ir::Pred_kind;
    switch (p->kind) {
        case Pred_kind::true_: return "";
        case Pred_kind::test: {
            const auto field = ir::find_field(p->field);
            const std::string value =
                field ? ir::format_field_value(*field, p->value)
                      : std::to_string(p->value);
            if (p->field == "tcp.dst") return "-p tcp --dport " + value;
            if (p->field == "tcp.src") return "-p tcp --sport " + value;
            if (p->field == "udp.dst") return "-p udp --dport " + value;
            if (p->field == "udp.src") return "-p udp --sport " + value;
            if (p->field == "ip.src") return "-s " + value;
            if (p->field == "ip.dst") return "-d " + value;
            if (p->field == "eth.src")
                return "-m mac --mac-source " + value;
            break;
        }
        case Pred_kind::and_: {
            const std::string lhs = render_match(p->lhs);
            const std::string rhs = render_match(p->rhs);
            if (lhs.empty()) return rhs;
            if (rhs.empty()) return lhs;
            return lhs + " " + rhs;
        }
        default: break;
    }
    return "-m merlin --expr '" + ir::to_string(p) + "'";
}

class Generator {
public:
    Generator(const core::Compilation& c, const topo::Topology& t, Naming& n)
        : comp_(c), topo_(t), naming_(n) {
        // The canonical text of each best-effort path class, used in tree
        // tag identity keys. Stable across compiles: the engine interns
        // classes by path expression, and to_string round-trips the parse.
        class_text_.resize(comp_.class_nfas.size());
        for (const core::Statement_plan& plan : comp_.plans) {
            if (plan.path_class < 0) continue;
            auto& text = class_text_[static_cast<std::size_t>(plan.path_class)];
            if (text.empty()) text = ir::to_string(plan.statement.path);
        }
        // Predicate groups for classify-rule dedup: statements whose
        // predicates hash-cons to the same BDD root share one classify rule
        // per (device, action). The group's representative predicate is its
        // lexicographically smallest text, independent of emission order,
        // so the shared rule's identity survives removal of any non-minimal
        // member and PR-6 diffs stay minimal.
        for (const core::Statement_plan& plan : comp_.plans) {
            std::string text = ir::to_string(plan.statement.predicate);
            const bdd::Node root = analyzer_.compile(plan.statement.predicate);
            pred_roots_.emplace(text, root);
            const auto [it, inserted] =
                reps_.try_emplace(root, text, plan.statement.predicate);
            if (!inserted && text < it->second.first)
                it->second = {std::move(text), plan.statement.predicate};
        }
    }

    Configuration run() {
        for (const core::Statement_plan& plan : comp_.plans) {
            if (plan.drop) {
                emit_drop(plan);
            } else if (plan.guaranteed()) {
                emit_guaranteed(plan);
            } else {
                emit_best_effort(plan);
            }
            if (plan.cap) emit_cap(plan);
        }
        return std::move(out_);
    }

private:
    // ------------------------------------------------------------ utilities
    [[nodiscard]] const std::string& name(topo::NodeId n) const {
        return topo_.node(n).name;
    }

    // The compiled root / canonical representative of a plan's predicate
    // (both precomputed in the constructor).
    [[nodiscard]] bdd::Node pred_root(const ir::PredPtr& p) const {
        return pred_roots_.at(ir::to_string(p));
    }
    [[nodiscard]] const ir::PredPtr& pred_rep(bdd::Node root) const {
        return reps_.at(root).second;
    }

    // Pushes a predicate-matching rule unless an identical rule (same
    // device and action, hash-cons-equal predicate) was already emitted;
    // with the match normalized to the group representative, the rendered
    // text is a sound identity key. Returns whether the rule was new.
    bool push_classify_rule(Flow_rule rule) {
        if (!emitted_classify_.insert(to_text(rule)).second) {
            ++out_.classify_rules_deduped;
            return false;
        }
        out_.flow_rules.push_back(std::move(rule));
        return true;
    }
    [[nodiscard]] bool is_switch(topo::NodeId n) const {
        return topo_.node(n).kind == topo::Node_kind::switch_;
    }

    // Switches adjacent to a host (its ingress/egress switches).
    [[nodiscard]] std::vector<topo::NodeId> edge_switches(
        topo::NodeId host) const {
        std::vector<topo::NodeId> out;
        for (const auto& adj : topo_.neighbors(host))
            // A failed access link attaches nothing (mirroring the
            // compiler's egress computation): no classification at, and no
            // delivery over, a dead edge.
            if (is_switch(adj.node) && topo_.link_up(adj.link))
                out.push_back(adj.node);
        return out;
    }

    [[nodiscard]] std::vector<topo::NodeId> all_edge_switches() const {
        std::set<topo::NodeId> uniq;
        for (topo::NodeId h : topo_.hosts())
            for (topo::NodeId s : edge_switches(h)) uniq.insert(s);
        return {uniq.begin(), uniq.end()};
    }

    void click_for(const core::Placement& placement) {
        const topo::Node& node = topo_.node(placement.location);
        std::ostringstream config;
        if (node.kind == topo::Node_kind::host) {
            config << "merlin-interpreter --function " << placement.function
                   << " --netfilter-hook forward";
        } else {
            config << "FromDevice(eth0) -> " << placement.function
                   << "() -> ToDevice(eth1);";
        }
        out_.click_configs.push_back(
            Click_config{node.name, placement.function, config.str()});
    }

    // ----------------------------------------------------------- guaranteed
    void emit_guaranteed(const core::Statement_plan& plan) {
        const core::Provisioned_path& path = *plan.path;
        const auto& nodes = path.nodes;
        // A provisioned path may revisit a switch (an NFV detour to a
        // waypoint reached and left over the same neighbour). One tag per
        // whole path would make the revisited switch's two rules ambiguous,
        // so the path is segmented: every switch with a later occurrence
        // re-tags the packet, and each occurrence matches its own segment
        // tag. Tagged rules outrank the tag-wildcard classify rule so a
        // revisit of the ingress switch cannot re-classify.
        //
        // Segment tags are named by statement, segment ordinal and the full
        // node sequence: any reroute changes the key, so a new path always
        // gets fresh tags and in-flight packets drain over the old ones.
        std::string route;
        for (const topo::NodeId n : nodes) {
            route += name(n);
            route += '/';
        }
        int segment = 0;
        const auto segment_tag = [&] {
            return naming_.tag("g|" + plan.statement.id + '|' +
                               std::to_string(segment++) + '|' + route);
        };
        int tag = segment_tag();
        bool classified = false;
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            if (!is_switch(nodes[i])) continue;
            const bool last_switch = [&] {
                for (std::size_t j = i + 1; j < nodes.size(); ++j)
                    if (is_switch(nodes[j])) return false;
                return true;
            }();
            Flow_rule rule;
            rule.device = name(nodes[i]);
            if (!classified) {
                rule.priority = kClassifyPriority;
                rule.match = plan.statement.predicate;
                rule.set_tag = tag;
                classified = true;
            } else {
                rule.priority = kSegmentTagPriority;
                rule.match_tag = tag;
            }
            const bool revisited = [&] {
                for (std::size_t j = i + 1; j < nodes.size(); ++j)
                    if (nodes[j] == nodes[i]) return true;
                return false;
            }();
            if (revisited) {
                tag = segment_tag();
                rule.set_tag = tag;
            }
            if (i + 1 < nodes.size()) {
                rule.out_port = name(nodes[i + 1]);
                // Guarantee enforced by a per-port queue. The queue id is
                // the outgoing segment tag, so queue identity follows tag
                // identity across compiles and a pure rate change diffs to
                // a queue update with no rule churn.
                const int q = tag;
                rule.queue = q;
                out_.queues.push_back(Queue_config{rule.device, rule.out_port,
                                                   q, plan.guarantee,
                                                   plan.cap});
                if (last_switch) {
                    rule.strip_tag = true;
                    if (plan.dst_host)
                        rule.match_dst_mac =
                            comp_.addressing.mac(*plan.dst_host);
                }
            }
            out_.flow_rules.push_back(std::move(rule));
        }
        for (const core::Placement& placement : path.placements)
            click_for(placement);
    }

    // ---------------------------------------------------------- best effort

    // A sink-tree walk may *stay* at a node while advancing NFA states (the
    // expression consumes one location several times in a row — e.g. a
    // waypoint entered mid-`.*`, or two functions hosted at one place). An
    // OpenFlow rule cannot forward a packet to its own switch, so each
    // device folds the whole stay into a single action: the outcome is
    // either acceptance (the stay ends on an accepting egress state) or the
    // first hop that leaves the node.
    struct Folded_hop {
        bool accepted = false;
        core::Sink_hop hop;  // meaningful only when !accepted
    };
    [[nodiscard]] static Folded_hop fold_stay(const core::Sink_tree& tree,
                                              int node, int state) {
        int q = state;
        // A stay can visit each NFA state at most once (tree distances
        // strictly decrease along next-hops); more steps means the tree
        // violated its own invariant — fail loudly rather than loop.
        for (int steps = 0; steps <= tree.states; ++steps) {
            if (tree.dist_at(node, q) == 0) return {true, {}};
            const core::Sink_hop hop = tree.next_at(node, q);
            if (hop.node != node) return {false, hop};
            q = hop.state;
        }
        expects(false, "sink-tree stay walk cycles without accepting");
        return {};
    }

    // A content signature of one sink tree: every reachable (switch, state)
    // cell with its distance and next hop, hashed FNV-1a over node *names*
    // (indices are not stable across topology edits). Two compiles produce
    // the same signature iff the tree forwards identically, so a tree tag
    // survives unrelated deltas but changes — retiring the old tag — the
    // moment a link failure or reroute alters any hop.
    const std::string& tree_signature(int cls, int egress) {
        const auto memo = tree_sigs_.find({cls, egress});
        if (memo != tree_sigs_.end()) return memo->second;
        const core::Sink_tree* tree = comp_.tree_for(cls, egress);
        expects(tree != nullptr, "tree must exist for served statements");
        const core::Switch_graph& sg = comp_.switch_graph;
        std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
        const auto mix = [&h](std::uint64_t v) {
            h ^= v;
            h *= 1099511628211ULL;  // FNV prime
        };
        const auto mix_name = [&](int node_index) {
            for (const char c :
                 name(sg.nodes[static_cast<std::size_t>(node_index)]))
                mix(static_cast<unsigned char>(c));
            mix(0x1f);  // separator
        };
        for (int n = 0; n < sg.size(); ++n) {
            for (int q = 0; q < tree->states; ++q) {
                const int d = tree->dist_at(n, q);
                if (d < 0) continue;
                mix_name(n);
                mix(static_cast<std::uint64_t>(q));
                mix(static_cast<std::uint64_t>(d));
                if (d > 0) {
                    const core::Sink_hop hop = tree->next_at(n, q);
                    mix_name(hop.node);
                    mix(static_cast<std::uint64_t>(hop.state));
                }
            }
        }
        std::ostringstream hex;
        hex << std::hex << h;
        return tree_sigs_.emplace(std::pair{cls, egress}, hex.str())
            .first->second;
    }

    // Tags are shared per (path class, egress symbol, NFA state). The
    // identity key names the class by its path expression and the egress by
    // its switch name, plus the tree signature: stable while forwarding is
    // unchanged, fresh when it is not.
    int tree_tag(int cls, int egress, int state) {
        const auto key = std::tuple{cls, egress, state};
        const auto it = tree_tags_.find(key);
        if (it != tree_tags_.end()) return it->second;
        const core::Switch_graph& sg = comp_.switch_graph;
        const int tag = naming_.tag(
            "t|" + class_text_[static_cast<std::size_t>(cls)] + '|' +
            name(sg.nodes[static_cast<std::size_t>(egress)]) + '|' +
            std::to_string(state) + '|' + tree_signature(cls, egress));
        tree_tags_.emplace(key, tag);
        return tag;
    }

    // Emits the shared per-tree forwarding rules once.
    void emit_tree(int cls, int egress) {
        if (!emitted_trees_.insert({cls, egress}).second) return;
        const core::Sink_tree* tree = comp_.tree_for(cls, egress);
        expects(tree != nullptr, "tree must exist for served statements");
        const core::Switch_graph& sg = comp_.switch_graph;
        for (int n = 0; n < sg.size(); ++n) {
            const topo::NodeId node = sg.nodes[static_cast<std::size_t>(n)];
            for (int q = 0; q < tree->states; ++q) {
                if (tree->dist_at(n, q) <= 0) continue;  // accepted/unreachable
                const auto [accepted, hop] = fold_stay(*tree, n, q);
                if (accepted) continue;  // a delivery rule serves this tag
                if (topo_.node(node).kind == topo::Node_kind::middlebox) {
                    // Middleboxes forward via their Click configuration.
                    // The classifier stage keys on the incoming tag, so
                    // middlebox forwarding is deterministic per state and a
                    // mixed old/new table cannot misroute through one.
                    std::ostringstream config;
                    config << "FromDevice(eth0) -> VLANClassifier("
                           << tree_tag(cls, egress, static_cast<int>(q))
                           << ") -> SetVLANAnno("
                           << tree_tag(cls, egress, hop.state)
                           << ") -> ToDevice(toward "
                           << name(sg.nodes[static_cast<std::size_t>(
                                  hop.node)])
                           << ");";
                    out_.click_configs.push_back(Click_config{
                        name(node), "forward", config.str()});
                    continue;
                }
                Flow_rule rule;
                rule.device = name(node);
                rule.priority = kTreeForwardPriority;
                rule.match_tag = tree_tag(cls, egress, static_cast<int>(q));
                if (hop.state != static_cast<int>(q))
                    rule.set_tag = tree_tag(cls, egress, hop.state);
                rule.out_port =
                    name(sg.nodes[static_cast<std::size_t>(hop.node)]);
                out_.flow_rules.push_back(std::move(rule));
            }
        }
    }

    // Delivery rule at the egress switch for one destination host.
    void emit_delivery(int cls, int egress, topo::NodeId dst) {
        if (!emitted_delivery_.insert({cls, egress, dst}).second) return;
        const core::Sink_tree* tree = comp_.tree_for(cls, egress);
        const auto& nfa =
            comp_.class_nfas[static_cast<std::size_t>(cls)];
        // Any state that reaches acceptance at the egress (directly, or by
        // staying there while the expression finishes consuming it) delivers.
        for (int q = 0; q < nfa.state_count(); ++q) {
            if (tree->dist_at(tree->egress, q) < 0) continue;
            if (!fold_stay(*tree, tree->egress, q).accepted) continue;
            Flow_rule rule;
            rule.device = name(
                comp_.switch_graph.nodes[static_cast<std::size_t>(egress)]);
            rule.priority = kDeliveryPriority;
            rule.match_tag = tree_tag(cls, egress, q);
            rule.match_dst_mac = comp_.addressing.mac(dst);
            rule.strip_tag = true;
            rule.out_port = name(dst);
            out_.flow_rules.push_back(std::move(rule));
        }
    }

    // Ingress classification for one statement at one ingress switch toward
    // one (egress, dst) pair. `extra_dst_match` adds an eth.dst match for
    // statements that do not pin their destination.
    void emit_ingress(const core::Statement_plan& plan, topo::NodeId ingress,
                      int egress, topo::NodeId dst, bool extra_dst_match) {
        const core::Switch_graph& sg = comp_.switch_graph;
        const int in_sym = sg.symbol_of[static_cast<std::size_t>(ingress)];
        if (in_sym < 0) return;
        const core::Sink_tree* tree = comp_.tree_for(plan.path_class, egress);
        if (tree == nullptr) return;
        const auto& nfa =
            comp_.class_nfas[static_cast<std::size_t>(plan.path_class)];
        const auto entry = tree->entry_state(nfa, in_sym);
        if (!entry) return;

        Flow_rule rule;
        rule.device = name(ingress);
        rule.priority = kClassifyPriority;
        rule.match = pred_rep(pred_root(plan.statement.predicate));
        if (extra_dst_match) rule.match_dst_mac = comp_.addressing.mac(dst);

        const auto [accepted, hop] = fold_stay(*tree, in_sym, *entry);
        if (accepted) {
            // Accepted at the ingress itself: ingress == egress, deliver
            // directly.
            rule.out_port = name(dst);
        } else {
            // The packet leaves carrying the state it will be in *after*
            // the hop — the state the next switch's tree rules key on.
            rule.set_tag = tree_tag(plan.path_class, egress, hop.state);
            rule.out_port = name(sg.nodes[static_cast<std::size_t>(hop.node)]);
        }
        push_classify_rule(std::move(rule));
        emit_tree(plan.path_class, egress);
        emit_delivery(plan.path_class, egress, dst);
    }

    void emit_best_effort(const core::Statement_plan& plan) {
        const std::vector<topo::NodeId> ingresses =
            plan.src_host ? edge_switches(*plan.src_host)
                          : all_edge_switches();
        const std::vector<topo::NodeId> dsts =
            plan.dst_host ? std::vector<topo::NodeId>{*plan.dst_host}
                          : topo_.hosts();
        for (topo::NodeId dst : dsts) {
            for (topo::NodeId egress_node : edge_switches(dst)) {
                const int egress =
                    comp_.switch_graph
                        .symbol_of[static_cast<std::size_t>(egress_node)];
                if (egress < 0) continue;
                for (topo::NodeId ingress : ingresses)
                    emit_ingress(plan, ingress, egress, dst,
                                 /*extra_dst_match=*/!plan.dst_host);
                // One egress suffices per destination host.
                break;
            }
        }
    }

    // ----------------------------------------------------------- drop / cap
    void emit_drop(const core::Statement_plan& plan) {
        const std::string match = render_match(plan.statement.predicate);
        if (plan.src_host) {
            out_.iptables_rules.push_back(Host_command{
                name(*plan.src_host),
                "iptables -A OUTPUT " + match + " -j DROP"});
        } else {
            for (topo::NodeId h : topo_.hosts())
                out_.iptables_rules.push_back(Host_command{
                    name(h), "iptables -A OUTPUT " + match + " -j DROP"});
        }
        // Defense in depth: drop at the ingress switches as well.
        const std::vector<topo::NodeId> ingresses =
            plan.src_host ? edge_switches(*plan.src_host)
                          : all_edge_switches();
        for (topo::NodeId sw : ingresses) {
            Flow_rule rule;
            rule.device = name(sw);
            rule.priority = kDropPriority;
            rule.match = pred_rep(pred_root(plan.statement.predicate));
            rule.drop = true;
            push_classify_rule(std::move(rule));
        }
    }

    void emit_cap(const core::Statement_plan& plan) {
        if (!plan.cap) return;
        const std::string rate = to_string(*plan.cap);
        const std::string match = render_match(plan.statement.predicate);
        const auto hosts = plan.src_host
                               ? std::vector<topo::NodeId>{*plan.src_host}
                               : topo_.hosts();
        for (topo::NodeId h : hosts) {
            // tc class ids are named per (host, statement) so a statement's
            // filter keeps its class across recompiles and the diff for an
            // unrelated delta leaves it untouched.
            const int klass = naming_.host_class(name(h), plan.statement.id);
            out_.tc_commands.push_back(Host_command{
                name(h), "tc class add dev eth0 parent 1: classid 1:" +
                             std::to_string(klass) + " htb rate " + rate +
                             " ceil " + rate});
            out_.tc_commands.push_back(Host_command{
                name(h), "tc filter add dev eth0 parent 1: " + match +
                             " flowid 1:" + std::to_string(klass)});
        }
    }

    const core::Compilation& comp_;
    const topo::Topology& topo_;
    Naming& naming_;
    Configuration out_;
    pred::Analyzer analyzer_;

    std::vector<std::string> class_text_;  // path class -> expression text
    // Predicate text -> BDD root, and root -> (canonical text, predicate).
    std::map<std::string, bdd::Node> pred_roots_;
    std::map<bdd::Node, std::pair<std::string, ir::PredPtr>> reps_;
    std::set<std::string> emitted_classify_;  // rendered-rule identity keys
    std::map<std::pair<int, int>, std::string> tree_sigs_;
    std::map<std::tuple<int, int, int>, int> tree_tags_;
    std::set<std::pair<int, int>> emitted_trees_;
    std::set<std::tuple<int, int, topo::NodeId>> emitted_delivery_;
};

}  // namespace

// ------------------------------------------------------------------- Naming

int Naming::tag(const std::string& key) {
    const auto it = tags_.find(key);
    if (it != tags_.end()) {
        it->second.used = true;
        return it->second.id;
    }
    int id;
    if (!free_tags_.empty()) {
        id = *free_tags_.begin();
        free_tags_.erase(free_tags_.begin());
    } else if (next_tag_ <= kMaxVlanTag) {
        id = next_tag_++;
    } else {
        throw Policy_error(
            "VLAN tag space exhausted: " + std::to_string(tags_.size()) +
            " live tags already occupy the usable 802.1Q range " +
            std::to_string(kMinVlanTag) + ".." + std::to_string(kMaxVlanTag) +
            "; cannot bind key '" + key + "'");
    }
    tags_.emplace(key, Binding{id, true});
    return id;
}

int Naming::host_class(const std::string& host,
                       const std::string& statement_id) {
    const std::string key = host + '|' + statement_id;
    const auto it = classes_.find(key);
    if (it != classes_.end()) {
        it->second.used = true;
        return it->second.id;
    }
    int id;
    std::set<int>& free = free_classes_[host];
    if (!free.empty()) {
        id = *free.begin();
        free.erase(free.begin());
    } else {
        id = ++next_class_[host];
    }
    classes_.emplace(key, Binding{id, true});
    return id;
}

void Naming::begin_generation() {
    for (auto& [key, binding] : tags_) binding.used = false;
    for (auto& [key, binding] : classes_) binding.used = false;
}

std::vector<int> Naming::collect_unused() {
    std::vector<int> retired;
    for (auto it = tags_.begin(); it != tags_.end();) {
        if (it->second.used) {
            ++it;
            continue;
        }
        retired.push_back(it->second.id);
        free_tags_.insert(it->second.id);
        it = tags_.erase(it);
    }
    for (auto it = classes_.begin(); it != classes_.end();) {
        if (it->second.used) {
            ++it;
            continue;
        }
        const std::string host =
            it->first.substr(0, it->first.find('|'));
        free_classes_[host].insert(it->second.id);
        it = classes_.erase(it);
    }
    std::sort(retired.begin(), retired.end());
    return retired;
}

std::map<std::string, int> Naming::tag_bindings() const {
    std::map<std::string, int> out;
    for (const auto& [key, binding] : tags_) out.emplace(key, binding.id);
    return out;
}

std::map<std::string, int> Naming::class_bindings() const {
    std::map<std::string, int> out;
    for (const auto& [key, binding] : classes_) out.emplace(key, binding.id);
    return out;
}

// ----------------------------------------------------------------- generate

void validate(const Configuration& config) {
    // device -> (lowest tag-rule priority, highest predicate-rule priority)
    std::map<std::string, std::pair<int, int>> bands;
    for (const Flow_rule& rule : config.flow_rules) {
        for (const std::optional<int>& tag : {rule.match_tag, rule.set_tag}) {
            if (tag && (*tag < kMinVlanTag || *tag > kMaxVlanTag))
                throw Policy_error("invalid table: rule on " + rule.device +
                                   " uses VLAN tag " + std::to_string(*tag) +
                                   " outside " + std::to_string(kMinVlanTag) +
                                   ".." + std::to_string(kMaxVlanTag));
        }
        auto& [min_tag, max_pred] =
            bands.try_emplace(rule.device, std::pair{kSegmentTagPriority + 1,
                                                     -1})
                .first->second;
        if (rule.match_tag)
            min_tag = std::min(min_tag, rule.priority);
        else
            max_pred = std::max(max_pred, rule.priority);
    }
    for (const auto& [device, band] : bands) {
        if (band.first <= band.second)
            throw Policy_error(
                "invalid table: on " + device + " a tag-matching rule at "
                "priority " + std::to_string(band.first) +
                " does not outrank a predicate rule at priority " +
                std::to_string(band.second) +
                " — a tagged packet could be re-classified");
    }
}

Configuration generate(const core::Compilation& compilation,
                       const topo::Topology& topo, Naming& naming) {
    if (!compilation.feasible)
        throw Policy_error("cannot generate code for infeasible policy: " +
                           compilation.diagnostic);
    Configuration out = Generator(compilation, topo, naming).run();
    validate(out);
    return out;
}

Configuration generate(const core::Compilation& compilation,
                       const topo::Topology& topo) {
    Naming scratch;
    return generate(compilation, topo, scratch);
}

std::map<std::string, interp::Program> host_programs(
    const core::Compilation& compilation, const topo::Topology& topo) {
    if (!compilation.feasible)
        throw Policy_error("cannot generate programs for infeasible policy: " +
                           compilation.diagnostic);
    std::map<std::string, interp::Program> out;
    for (topo::NodeId h : topo.hosts())
        out.emplace(topo.node(h).name, interp::Program{});

    auto targets = [&](const core::Statement_plan& plan) {
        return plan.src_host
                   ? std::vector<topo::NodeId>{*plan.src_host}
                   : topo.hosts();
    };
    for (const core::Statement_plan& plan : compilation.plans) {
        interp::Rule rule;
        rule.guard = plan.statement.predicate;
        rule.note = plan.statement.id;
        if (plan.drop) {
            rule.action = interp::Action::drop;
        } else if (plan.cap) {
            rule.action = interp::Action::rate_limit;
            rule.rate = *plan.cap;
        } else {
            rule.action = interp::Action::allow;
        }
        for (topo::NodeId h : targets(plan))
            out[topo.node(h).name].rules.push_back(rule);
    }
    return out;
}

std::string to_text(const Flow_rule& r) {
    std::ostringstream out;
    out << r.device << ": priority=" << r.priority;
    if (r.match_tag) out << " vlan=" << *r.match_tag;
    if (r.match) out << " match=[" << ir::to_string(r.match) << ']';
    if (r.match_dst_mac) {
        const auto f = ir::find_field("eth.dst");
        out << " dst=" << ir::format_field_value(*f, *r.match_dst_mac);
    }
    out << " ->";
    if (r.drop) out << " drop";
    if (r.set_tag) out << " set_vlan:" << *r.set_tag;
    if (r.strip_tag) out << " strip_vlan";
    if (!r.out_port.empty()) out << " output:" << r.out_port;
    if (r.queue) out << " queue:" << *r.queue;
    return out.str();
}

std::string to_text(const Configuration& config) {
    std::ostringstream out;
    out << "# OpenFlow rules (" << config.flow_rules.size() << ")\n";
    for (const Flow_rule& r : config.flow_rules) out << to_text(r) << '\n';
    out << "# Queues (" << config.queues.size() << ")\n";
    for (const Queue_config& q : config.queues) {
        out << q.device << " port:" << q.port << " queue:" << q.queue_id
            << " min=" << to_string(q.min_rate);
        if (q.max_rate) out << " max=" << to_string(*q.max_rate);
        out << '\n';
    }
    out << "# tc (" << config.tc_commands.size() << ")\n";
    for (const Host_command& c : config.tc_commands)
        out << c.host << ": " << c.command << '\n';
    out << "# iptables (" << config.iptables_rules.size() << ")\n";
    for (const Host_command& c : config.iptables_rules)
        out << c.host << ": " << c.command << '\n';
    out << "# click (" << config.click_configs.size() << ")\n";
    for (const Click_config& c : config.click_configs)
        out << c.device << " [" << c.function << "]: " << c.config << '\n';
    return out.str();
}

}  // namespace merlin::codegen
