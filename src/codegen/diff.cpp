#include "codegen/diff.h"

#include <algorithm>
#include <cctype>
#include <iterator>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

#include "util/error.h"

namespace merlin::codegen {
namespace {

std::string pred_text(const ir::PredPtr& p) {
    return p ? ir::to_string(p) : std::string();
}

// Total order over every rule field: canonical sort key and full-equality
// witness in one. Predicates compare by their (round-trippable) text.
auto full_key(const Flow_rule& r) {
    return std::tuple(r.device, r.priority, r.match_tag.has_value(),
                      r.match_tag.value_or(0), pred_text(r.match),
                      r.match_dst_mac.has_value(),
                      r.match_dst_mac.value_or(0), r.drop,
                      r.set_tag.has_value(), r.set_tag.value_or(0),
                      r.strip_tag, r.out_port, r.queue.has_value(),
                      r.queue.value_or(0));
}

// Rule identity is the match side only; two rules with equal identity but
// different actions are one modify. The leading bool separates tag rules
// from predicate rules, so the two populations never pair.
auto identity_key(const Flow_rule& r) {
    return std::tuple(r.match_tag.has_value(), r.device, r.priority,
                      r.match_tag.value_or(0), pred_text(r.match),
                      r.match_dst_mac.has_value(),
                      r.match_dst_mac.value_or(0));
}

auto queue_full_key(const Queue_config& q) {
    return std::tuple(q.device, q.port, q.queue_id, q.min_rate.bps(),
                      q.max_rate.has_value(),
                      q.max_rate ? q.max_rate->bps() : 0);
}
auto queue_identity_key(const Queue_config& q) {
    return std::tuple(q.device, q.port, q.queue_id);
}

auto command_key(const Host_command& c) { return std::tuple(c.host, c.command); }
auto click_key(const Click_config& c) {
    return std::tuple(c.device, c.function, c.config);
}

// Exact multiset diff for instruction kinds with no modify concept.
template <typename T, typename KeyFn>
void multiset_diff(const std::vector<T>& old_items,
                   const std::vector<T>& new_items, KeyFn key,
                   std::vector<T>& installs, std::vector<T>& removes) {
    std::map<decltype(key(old_items[0])), std::vector<T>> pool;
    for (const T& item : old_items) pool[key(item)].push_back(item);
    for (const T& item : new_items) {
        auto it = pool.find(key(item));
        if (it != pool.end() && !it->second.empty())
            it->second.pop_back();
        else
            installs.push_back(item);
    }
    for (auto& [k, left] : pool)
        for (T& item : left) removes.push_back(std::move(item));
}

// Every VLAN tag a configuration references: rule matches and actions,
// queue ids (which are outgoing segment tags), and the tag stages of
// middlebox Click forwards.
std::set<int> collect_tags(const Configuration& config) {
    std::set<int> tags;
    for (const Flow_rule& r : config.flow_rules) {
        if (r.match_tag) tags.insert(*r.match_tag);
        if (r.set_tag) tags.insert(*r.set_tag);
    }
    for (const Queue_config& q : config.queues) tags.insert(q.queue_id);
    for (const Click_config& c : config.click_configs) {
        for (const char* marker : {"VLANClassifier(", "SetVLANAnno("}) {
            for (std::size_t at = c.config.find(marker);
                 at != std::string::npos;
                 at = c.config.find(marker, at + 1)) {
                const std::size_t digits = at + std::string(marker).size();
                tags.insert(std::stoi(c.config.substr(digits)));
            }
        }
    }
    return tags;
}

// ---------------------------------------------------------- apply plumbing

template <typename T, typename KeyFn>
void remove_item(std::vector<T>& items, const T& target, KeyFn key,
                 const char* what) {
    const auto it = std::find_if(items.begin(), items.end(), [&](const T& x) {
        return key(x) == key(target);
    });
    expects(it != items.end(), what);
    items.erase(it);
}

template <typename T, typename KeyFn>
void replace_item(std::vector<T>& items, const T& before, const T& after,
                  KeyFn key, const char* what) {
    const auto it = std::find_if(items.begin(), items.end(), [&](const T& x) {
        return key(x) == key(before);
    });
    expects(it != items.end(), what);
    *it = after;
}

}  // namespace

// --------------------------------------------------------------------- Diff

int Diff::rules_touched() const {
    return static_cast<int>(tag_installs.size() + tag_updates.size() +
                            classifier_installs.size() +
                            classifier_updates.size() +
                            classifier_removes.size() + tag_removes.size());
}

int Diff::total_operations() const {
    return rules_touched() +
           static_cast<int>(queue_installs.size() + queue_updates.size() +
                            queue_removes.size() + click_installs.size() +
                            click_removes.size() + tc_installs.size() +
                            tc_removes.size() + iptables_installs.size() +
                            iptables_removes.size());
}

bool equal(const Flow_rule& a, const Flow_rule& b) {
    return full_key(a) == full_key(b);
}

Configuration canonical(Configuration config) {
    const auto by = [](auto key) {
        return [key](const auto& a, const auto& b) { return key(a) < key(b); };
    };
    std::sort(config.flow_rules.begin(), config.flow_rules.end(),
              by([](const Flow_rule& r) { return full_key(r); }));
    std::sort(config.queues.begin(), config.queues.end(),
              by([](const Queue_config& q) { return queue_full_key(q); }));
    std::sort(config.tc_commands.begin(), config.tc_commands.end(),
              by([](const Host_command& c) { return command_key(c); }));
    std::sort(config.iptables_rules.begin(), config.iptables_rules.end(),
              by([](const Host_command& c) { return command_key(c); }));
    std::sort(config.click_configs.begin(), config.click_configs.end(),
              by([](const Click_config& c) { return click_key(c); }));
    return config;
}

bool equal(const Configuration& a, const Configuration& b) {
    const Configuration ca = canonical(a);
    const Configuration cb = canonical(b);
    if (ca.flow_rules.size() != cb.flow_rules.size()) return false;
    for (std::size_t i = 0; i < ca.flow_rules.size(); ++i)
        if (!equal(ca.flow_rules[i], cb.flow_rules[i])) return false;
    const auto keys_equal = [](const auto& xs, const auto& ys, auto key) {
        if (xs.size() != ys.size()) return false;
        for (std::size_t i = 0; i < xs.size(); ++i)
            if (key(xs[i]) != key(ys[i])) return false;
        return true;
    };
    return keys_equal(ca.queues, cb.queues,
                      [](const Queue_config& q) { return queue_full_key(q); }) &&
           keys_equal(ca.tc_commands, cb.tc_commands,
                      [](const Host_command& c) { return command_key(c); }) &&
           keys_equal(ca.iptables_rules, cb.iptables_rules,
                      [](const Host_command& c) { return command_key(c); }) &&
           keys_equal(ca.click_configs, cb.click_configs,
                      [](const Click_config& c) { return click_key(c); });
}

Diff diff(const Configuration& old_config, const Configuration& new_config) {
    Diff out;

    // Flow rules: first cancel rules present identically on both sides,
    // then pair the leftovers by identity key — same identity with a new
    // action is a modify, the rest are installs/removes routed to the tag
    // (phases 1/3) or classifier (phase 2) buckets.
    std::map<decltype(full_key(Flow_rule{})), std::vector<Flow_rule>> pool;
    for (const Flow_rule& r : old_config.flow_rules)
        pool[full_key(r)].push_back(r);
    std::vector<Flow_rule> old_left, new_left;
    for (const Flow_rule& r : new_config.flow_rules) {
        auto it = pool.find(full_key(r));
        if (it != pool.end() && !it->second.empty())
            it->second.pop_back();
        else
            new_left.push_back(r);
    }
    for (auto& [k, left] : pool)
        for (Flow_rule& r : left) old_left.push_back(std::move(r));

    std::map<decltype(identity_key(Flow_rule{})),
             std::pair<std::vector<Flow_rule>, std::vector<Flow_rule>>>
        by_identity;
    for (Flow_rule& r : old_left)
        by_identity[identity_key(r)].first.push_back(std::move(r));
    for (Flow_rule& r : new_left)
        by_identity[identity_key(r)].second.push_back(std::move(r));
    for (auto& [key, sides] : by_identity) {
        auto& [olds, news] = sides;
        const bool tagged = std::get<0>(key);
        const std::size_t paired = std::min(olds.size(), news.size());
        for (std::size_t i = 0; i < paired; ++i) {
            Rule_update u{std::move(olds[i]), std::move(news[i])};
            (tagged ? out.tag_updates : out.classifier_updates)
                .push_back(std::move(u));
        }
        for (std::size_t i = paired; i < news.size(); ++i)
            (tagged ? out.tag_installs : out.classifier_installs)
                .push_back(std::move(news[i]));
        for (std::size_t i = paired; i < olds.size(); ++i)
            (tagged ? out.tag_removes : out.classifier_removes)
                .push_back(std::move(olds[i]));
    }

    // Queues: same identity (device, port, queue id) with new rates is a
    // rate update in phase 1 — the common case for bandwidth deltas.
    std::map<decltype(queue_identity_key(Queue_config{})),
             std::pair<std::vector<Queue_config>, std::vector<Queue_config>>>
        queues;
    for (const Queue_config& q : old_config.queues)
        queues[queue_identity_key(q)].first.push_back(q);
    for (const Queue_config& q : new_config.queues)
        queues[queue_identity_key(q)].second.push_back(q);
    for (auto& [key, sides] : queues) {
        auto& [olds, news] = sides;
        const std::size_t paired = std::min(olds.size(), news.size());
        for (std::size_t i = 0; i < paired; ++i)
            if (queue_full_key(olds[i]) != queue_full_key(news[i]))
                out.queue_updates.push_back(
                    Queue_update{std::move(olds[i]), std::move(news[i])});
        for (std::size_t i = paired; i < news.size(); ++i)
            out.queue_installs.push_back(std::move(news[i]));
        for (std::size_t i = paired; i < olds.size(); ++i)
            out.queue_removes.push_back(std::move(olds[i]));
    }

    multiset_diff(old_config.tc_commands, new_config.tc_commands,
                  [](const Host_command& c) { return command_key(c); },
                  out.tc_installs, out.tc_removes);
    multiset_diff(old_config.iptables_rules, new_config.iptables_rules,
                  [](const Host_command& c) { return command_key(c); },
                  out.iptables_installs, out.iptables_removes);
    multiset_diff(old_config.click_configs, new_config.click_configs,
                  [](const Click_config& c) { return click_key(c); },
                  out.click_installs, out.click_removes);

    const std::set<int> old_tags = collect_tags(old_config);
    const std::set<int> new_tags = collect_tags(new_config);
    std::set_difference(old_tags.begin(), old_tags.end(), new_tags.begin(),
                        new_tags.end(),
                        std::back_inserter(out.retired_tags));
    return out;
}

// -------------------------------------------------------------------- apply

void apply_prepare(Configuration& config, const Diff& d) {
    for (const Flow_rule& r : d.tag_installs) config.flow_rules.push_back(r);
    for (const Rule_update& u : d.tag_updates)
        replace_item(config.flow_rules, u.before, u.after,
                     [](const Flow_rule& r) { return full_key(r); },
                     "diff tag update targets a rule absent from the table");
    for (const Queue_config& q : d.queue_installs) config.queues.push_back(q);
    for (const Queue_update& u : d.queue_updates)
        replace_item(config.queues, u.before, u.after,
                     [](const Queue_config& q) { return queue_full_key(q); },
                     "diff queue update targets a queue absent from the table");
    for (const Click_config& c : d.click_installs)
        config.click_configs.push_back(c);
    for (const Host_command& c : d.tc_installs)
        config.tc_commands.push_back(c);
    for (const Host_command& c : d.iptables_installs)
        config.iptables_rules.push_back(c);
}

void apply_commit(Configuration& config, const Diff& d) {
    for (const Flow_rule& r : d.classifier_installs)
        config.flow_rules.push_back(r);
    for (const Rule_update& u : d.classifier_updates)
        replace_item(config.flow_rules, u.before, u.after,
                     [](const Flow_rule& r) { return full_key(r); },
                     "diff classifier update targets a rule absent from the "
                     "table");
    for (const Flow_rule& r : d.classifier_removes)
        remove_item(config.flow_rules, r,
                    [](const Flow_rule& x) { return full_key(x); },
                    "diff classifier remove targets a rule absent from the "
                    "table");
}

void apply_cleanup(Configuration& config, const Diff& d) {
    for (const Flow_rule& r : d.tag_removes)
        remove_item(config.flow_rules, r,
                    [](const Flow_rule& x) { return full_key(x); },
                    "diff tag remove targets a rule absent from the table");
    for (const Queue_config& q : d.queue_removes)
        remove_item(config.queues, q,
                    [](const Queue_config& x) { return queue_full_key(x); },
                    "diff queue remove targets a queue absent from the table");
    for (const Click_config& c : d.click_removes)
        remove_item(config.click_configs, c,
                    [](const Click_config& x) { return click_key(x); },
                    "diff click remove targets a config absent from the table");
    for (const Host_command& c : d.tc_removes)
        remove_item(config.tc_commands, c,
                    [](const Host_command& x) { return command_key(x); },
                    "diff tc remove targets a command absent from the table");
    for (const Host_command& c : d.iptables_removes)
        remove_item(config.iptables_rules, c,
                    [](const Host_command& x) { return command_key(x); },
                    "diff iptables remove targets a rule absent from the "
                    "table");
}

Configuration apply(Configuration config, const Diff& d) {
    apply_prepare(config, d);
    apply_commit(config, d);
    apply_cleanup(config, d);
    validate(config);
    return config;
}

// ------------------------------------------------------------------ to_text

std::string to_text(const Diff& d) {
    std::ostringstream out;
    const auto rule_line = [&](const char* op, const Flow_rule& r) {
        out << "  " << op << ' ' << to_text(r) << '\n';
    };
    const auto queue_line = [&](const char* op, const Queue_config& q) {
        out << "  " << op << ' ' << q.device << " port:" << q.port
            << " queue:" << q.queue_id << " min=" << to_string(q.min_rate);
        if (q.max_rate) out << " max=" << to_string(*q.max_rate);
        out << '\n';
    };
    const auto command_line = [&](const char* op, const Host_command& c) {
        out << "  " << op << ' ' << c.host << ": " << c.command << '\n';
    };
    const auto click_line = [&](const char* op, const Click_config& c) {
        out << "  " << op << ' ' << c.device << " [" << c.function
            << "]: " << c.config << '\n';
    };

    out << "phase 1 (prepare): " << d.tag_installs.size() << "+"
        << d.tag_updates.size() << " tag rules, "
        << d.queue_installs.size() + d.queue_updates.size() << " queues, "
        << d.click_installs.size() << " click, "
        << d.tc_installs.size() + d.iptables_installs.size() << " host\n";
    for (const Flow_rule& r : d.tag_installs) rule_line("+", r);
    for (const Rule_update& u : d.tag_updates) {
        rule_line("-", u.before);
        rule_line("+", u.after);
    }
    for (const Queue_config& q : d.queue_installs) queue_line("+", q);
    for (const Queue_update& u : d.queue_updates) {
        queue_line("-", u.before);
        queue_line("+", u.after);
    }
    for (const Click_config& c : d.click_installs) click_line("+", c);
    for (const Host_command& c : d.tc_installs) command_line("+", c);
    for (const Host_command& c : d.iptables_installs) command_line("+", c);

    out << "phase 2 (commit): " << d.classifier_installs.size() << "+"
        << d.classifier_updates.size() << "-"
        << d.classifier_removes.size() << " classifiers\n";
    for (const Flow_rule& r : d.classifier_installs) rule_line("+", r);
    for (const Rule_update& u : d.classifier_updates) {
        rule_line("-", u.before);
        rule_line("+", u.after);
    }
    for (const Flow_rule& r : d.classifier_removes) rule_line("-", r);

    out << "phase 3 (cleanup): " << d.tag_removes.size() << " tag rules, "
        << d.queue_removes.size() << " queues, " << d.click_removes.size()
        << " click, " << d.tc_removes.size() + d.iptables_removes.size()
        << " host, " << d.retired_tags.size() << " tags retired\n";
    for (const Flow_rule& r : d.tag_removes) rule_line("-", r);
    for (const Queue_config& q : d.queue_removes) queue_line("-", q);
    for (const Click_config& c : d.click_removes) click_line("-", c);
    for (const Host_command& c : d.tc_removes) command_line("-", c);
    for (const Host_command& c : d.iptables_removes) command_line("-", c);
    if (!d.retired_tags.empty()) {
        out << "  retired tags:";
        for (const int tag : d.retired_tags) out << ' ' << tag;
        out << '\n';
    }
    return out.str();
}

// --------------------------------------------------------------- keyed_text

std::string keyed_text(const Configuration& config, const Naming& naming) {
    std::map<int, std::string> tag_key;
    for (const auto& [key, id] : naming.tag_bindings()) tag_key[id] = key;
    // (host, class id) -> key, from "host|statement" bindings.
    std::map<std::pair<std::string, int>, std::string> class_key;
    for (const auto& [key, id] : naming.class_bindings())
        class_key[{key.substr(0, key.find('|')), id}] = key;

    const auto tag_name = [&](int tag) {
        const auto it = tag_key.find(tag);
        return it != tag_key.end() ? "<" + it->second + ">"
                                   : std::to_string(tag);
    };
    // Replaces the integer after each tag-stage marker in a Click snippet.
    const auto click_text = [&](std::string text) {
        for (const char* marker : {"VLANClassifier(", "SetVLANAnno("}) {
            const std::size_t mark_len = std::string(marker).size();
            for (std::size_t at = text.find(marker);
                 at != std::string::npos;
                 at = text.find(marker, at + 1)) {
                std::size_t end = at + mark_len;
                while (end < text.size() && std::isdigit(
                           static_cast<unsigned char>(text[end])))
                    ++end;
                const int tag = std::stoi(text.substr(at + mark_len));
                text.replace(at + mark_len, end - (at + mark_len),
                             tag_name(tag));
            }
        }
        return text;
    };
    // Replaces "1:<n>" tc handles with the class key for this host.
    const auto tc_text = [&](const std::string& host, std::string text) {
        for (std::size_t at = text.find("1:"); at != std::string::npos;
             at = text.find("1:", at + 1)) {
            std::size_t end = at + 2;
            while (end < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[end])))
                ++end;
            if (end == at + 2) continue;  // the bare "1:" parent handle
            const int klass = std::stoi(text.substr(at + 2));
            const auto it = class_key.find({host, klass});
            if (it == class_key.end()) continue;
            text.replace(at + 2, end - (at + 2), "<" + it->second + ">");
        }
        return text;
    };

    std::vector<std::string> lines;
    for (const Flow_rule& r : config.flow_rules) {
        std::ostringstream line;
        line << "rule " << r.device << " priority=" << r.priority;
        if (r.match_tag) line << " vlan=" << tag_name(*r.match_tag);
        if (r.match) line << " match=[" << ir::to_string(r.match) << ']';
        if (r.match_dst_mac) line << " dst=" << *r.match_dst_mac;
        line << " ->";
        if (r.drop) line << " drop";
        if (r.set_tag) line << " set_vlan:" << tag_name(*r.set_tag);
        if (r.strip_tag) line << " strip_vlan";
        if (!r.out_port.empty()) line << " output:" << r.out_port;
        if (r.queue) line << " queue:" << tag_name(*r.queue);
        lines.push_back(line.str());
    }
    for (const Queue_config& q : config.queues) {
        std::ostringstream line;
        line << "queue " << q.device << " port:" << q.port << " id:"
             << tag_name(q.queue_id) << " min=" << to_string(q.min_rate);
        if (q.max_rate) line << " max=" << to_string(*q.max_rate);
        lines.push_back(line.str());
    }
    for (const Host_command& c : config.tc_commands)
        lines.push_back("tc " + c.host + ": " + tc_text(c.host, c.command));
    for (const Host_command& c : config.iptables_rules)
        lines.push_back("iptables " + c.host + ": " + c.command);
    for (const Click_config& c : config.click_configs)
        lines.push_back("click " + c.device + " [" + c.function +
                        "]: " + click_text(c.config));

    std::sort(lines.begin(), lines.end());
    std::string out;
    for (const std::string& line : lines) {
        out += line;
        out += '\n';
    }
    return out;
}

// -------------------------------------------------------------- Incremental

Diff Incremental::update(const core::Compilation& compilation,
                         const topo::Topology& topo) {
    if (!compilation.feasible)
        throw Policy_error("cannot diff an infeasible compilation: " +
                           compilation.diagnostic);
    naming_.begin_generation();
    Configuration next = generate(compilation, topo, naming_);
    std::vector<int> swept = naming_.collect_unused();
    Diff d = diff(config_, next);
    // The allocator sweep must cover the config-derived lifecycle: a tag
    // that vanished from the tables but was not swept means an identity
    // key stayed bound to rules that no longer exist — exactly the
    // instability stable naming exists to rule out. (The sweep may retire
    // *more*: bindings allocated by a generation that threw before
    // publishing.) The sweep is authoritative for the free list.
    expects(std::includes(swept.begin(), swept.end(), d.retired_tags.begin(),
                          d.retired_tags.end()),
            "tag sweep disagrees with config-derived retirement");
    d.retired_tags = std::move(swept);
    config_ = std::move(next);
    return d;
}

}  // namespace merlin::codegen
