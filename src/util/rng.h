// Deterministic pseudo-random source used by generators and benchmarks.
//
// All experiments must be reproducible run-to-run, so every randomized
// component receives an explicitly seeded `Rng` rather than global state.
#pragma once

#include <cstdint>
#include <random>

namespace merlin {

class Rng {
public:
    explicit Rng(std::uint64_t seed) : engine_(seed) {}

    // Uniform integer in [lo, hi] (inclusive).
    [[nodiscard]] std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
        std::uniform_int_distribution<std::int64_t> d(lo, hi);
        return d(engine_);
    }

    // Uniform real in [lo, hi).
    [[nodiscard]] double real(double lo, double hi) {
        std::uniform_real_distribution<double> d(lo, hi);
        return d(engine_);
    }

    // Normal with given mean and standard deviation.
    [[nodiscard]] double normal(double mean, double stddev) {
        std::normal_distribution<double> d(mean, stddev);
        return d(engine_);
    }

    // Bernoulli with probability p of true.
    [[nodiscard]] bool chance(double p) {
        std::bernoulli_distribution d(p);
        return d(engine_);
    }

    [[nodiscard]] std::mt19937_64& engine() { return engine_; }

private:
    std::mt19937_64 engine_;
};

}  // namespace merlin
