#include "util/units.h"

#include <cctype>
#include <cmath>
#include <cstdint>

#include "util/error.h"

namespace merlin {
namespace {

// Case-insensitive comparison of the unit suffix.
bool iequals(const std::string& a, const std::string& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i])))
            return false;
    }
    return true;
}

}  // namespace

Bandwidth parse_bandwidth(const std::string& text) {
    std::size_t i = 0;
    while (i < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[i])) || text[i] == '.'))
        ++i;
    if (i == 0)
        throw Parse_error("bandwidth must start with a number: '" + text + "'",
                          0, 0);
    const double value = std::stod(text.substr(0, i));
    std::string unit = text.substr(i);
    // Strip surrounding whitespace in the unit.
    while (!unit.empty() && unit.front() == ' ') unit.erase(unit.begin());
    while (!unit.empty() && unit.back() == ' ') unit.pop_back();

    double scale = 0;
    if (iequals(unit, "bps"))
        scale = 1;
    else if (iequals(unit, "kbps"))
        scale = 1e3;
    else if (iequals(unit, "mbps"))
        scale = 1e6;
    else if (iequals(unit, "gbps"))
        scale = 1e9;
    else if (iequals(unit, "B/s"))
        scale = 8;
    else if (iequals(unit, "KB/s"))
        scale = 8e3;
    else if (iequals(unit, "MB/s"))
        scale = 8e6;
    else if (iequals(unit, "GB/s"))
        scale = 8e9;
    else
        throw Parse_error("unknown bandwidth unit: '" + unit + "'", 0, 0);

    const double bps = value * scale;
    if (bps < 0 || std::isnan(bps))
        throw Parse_error("negative bandwidth: '" + text + "'", 0, 0);
    return Bandwidth(static_cast<std::uint64_t>(std::llround(bps)));
}

std::string to_string(Bandwidth bw) {
    const std::uint64_t n = bw.bps();
    struct Unit {
        std::uint64_t scale;
        const char* suffix;
    };
    // Prefer byte units (the paper's convention), then bit units.
    static constexpr Unit units[] = {
        {8'000'000'000ULL, "GB/s"}, {8'000'000ULL, "MB/s"},
        {8'000ULL, "KB/s"},         {1'000'000'000ULL, "Gbps"},
        {1'000'000ULL, "Mbps"},     {1'000ULL, "kbps"},
    };
    for (const Unit& u : units) {
        if (n != 0 && n % u.scale == 0)
            return std::to_string(n / u.scale) + u.suffix;
    }
    return std::to_string(n) + "bps";
}

}  // namespace merlin
