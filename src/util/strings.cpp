#include "util/strings.h"

#include <cctype>

namespace merlin {

std::vector<std::string> split(std::string_view text, char delim) {
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= text.size(); ++i) {
        if (i == text.size() || text[i] == delim) {
            out.emplace_back(text.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) out += sep;
        out += parts[i];
    }
    return out;
}

std::string_view trim(std::string_view text) {
    std::size_t b = 0;
    std::size_t e = text.size();
    while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
    return text.substr(b, e - b);
}

bool starts_with(std::string_view text, std::string_view prefix) {
    return text.size() >= prefix.size() &&
           text.substr(0, prefix.size()) == prefix;
}

}  // namespace merlin
