// A small fixed-size thread pool for the compilation front-end.
//
// The Merlin compiler has two embarrassingly parallel loops: per-statement
// logical-topology construction and per-(class, egress) sink-tree
// construction. Both fan out through parallel_for(): workers pull indices
// from a shared atomic counter and the caller writes results into slots
// pre-sized by index, so compilation output is bit-identical regardless of
// thread count. A pool sized 1 spawns no threads at all and runs inline —
// the sequential path pays zero synchronization overhead.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace merlin::util {

// Thread-count resolution: an explicit request (> 0) wins; otherwise the
// MERLIN_THREADS environment variable; otherwise hardware_concurrency.
inline int resolve_jobs(int requested) {
    if (requested > 0) return requested;
    if (const char* env = std::getenv("MERLIN_THREADS")) {
        char* end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v > 0 && v <= 1024)
            return static_cast<int>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

class Thread_pool {
public:
    explicit Thread_pool(int jobs) : jobs_(std::max(jobs, 1)) {
        // The calling thread participates in every parallel_for, so the
        // pool needs only jobs - 1 workers.
        workers_.reserve(static_cast<std::size_t>(jobs_ - 1));
        for (int t = 0; t < jobs_ - 1; ++t)
            workers_.emplace_back(
                [this](const std::stop_token& stop) { work(stop); });
    }

    Thread_pool(const Thread_pool&) = delete;
    Thread_pool& operator=(const Thread_pool&) = delete;

    [[nodiscard]] int size() const { return jobs_; }

    // Runs fn(i) for every i in [0, n), distributing indices dynamically
    // across the pool plus the calling thread; returns when all are done.
    // Each index runs exactly once, so writes to slot i are deterministic.
    // The first exception thrown by any fn(i) is rethrown on the calling
    // thread (remaining indices may then be skipped).
    template <typename Fn>
    void parallel_for(int n, Fn&& fn) {
        if (n <= 0) return;
        if (workers_.empty() || n == 1) {
            for (int i = 0; i < n; ++i) fn(i);
            return;
        }
        const auto state = std::make_shared<For_state>();
        state->limit = n;
        const auto body = [state, &fn] {
            while (!state->failed.load(std::memory_order_relaxed)) {
                const int i =
                    state->next.fetch_add(1, std::memory_order_relaxed);
                if (i >= state->limit) break;
                try {
                    fn(i);
                } catch (...) {
                    const std::scoped_lock lock(state->mutex);
                    if (!state->failed.exchange(true))
                        state->error = std::current_exception();
                }
            }
        };
        const int helpers =
            std::min(static_cast<int>(workers_.size()), n - 1);
        {
            const std::scoped_lock lock(mutex_);
            state->helpers_left = helpers;
            for (int t = 0; t < helpers; ++t)
                queue_.emplace_back([state, body] {
                    body();
                    const std::scoped_lock inner(state->mutex);
                    if (--state->helpers_left == 0) state->done.notify_all();
                });
        }
        ready_.notify_all();
        body();
        std::unique_lock lock(state->mutex);
        state->done.wait(lock, [&] { return state->helpers_left == 0; });
        if (state->error) std::rethrow_exception(state->error);
    }

private:
    struct For_state {
        std::atomic<int> next{0};
        int limit = 0;
        std::atomic<bool> failed{false};
        std::mutex mutex;
        std::condition_variable done;
        int helpers_left = 0;
        std::exception_ptr error;
    };

    void work(const std::stop_token& stop) {
        while (true) {
            std::function<void()> task;
            {
                std::unique_lock lock(mutex_);
                if (!ready_.wait(lock, stop,
                                 [this] { return !queue_.empty(); }))
                    return;  // stop requested and nothing queued
                task = std::move(queue_.front());
                queue_.pop_front();
            }
            task();
        }
    }

    const int jobs_;
    std::mutex mutex_;
    std::condition_variable_any ready_;  // stop_token-aware wait
    std::deque<std::function<void()>> queue_;
    // Last member: destroyed (stop-requested and joined) first, while the
    // queue and mutex above are still alive.
    std::vector<std::jthread> workers_;
};

}  // namespace merlin::util
