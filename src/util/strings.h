// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace merlin {

// Splits on a single-character delimiter; empty fields preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char delim);

// Joins with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

// Trims ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view text);

// True if `text` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);

// "h" + 3 -> "h3".  Built with append because GCC 12's -Wrestrict misfires
// on `"h" + std::to_string(n)` under optimization (GCC PR105651).
[[nodiscard]] inline std::string indexed(std::string_view prefix,
                                         long long n) {
    std::string out(prefix);
    out += std::to_string(n);
    return out;
}

// "a" + 1, 2 -> "a1_2" (pod-style two-level names).
[[nodiscard]] inline std::string indexed(std::string_view prefix, long long a,
                                         long long b) {
    std::string out(prefix);
    out += std::to_string(a);
    out += '_';
    out += std::to_string(b);
    return out;
}

}  // namespace merlin
