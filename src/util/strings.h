// Small string helpers shared across modules.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace merlin {

// Splits on a single-character delimiter; empty fields preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char delim);

// Joins with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

// Trims ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view text);

// True if `text` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);

// "h" + 3 -> "h3".  Built with append because GCC 12's -Wrestrict misfires
// on `"h" + std::to_string(n)` under optimization (GCC PR105651).
[[nodiscard]] inline std::string indexed(std::string_view prefix,
                                         long long n) {
    std::string out(prefix);
    out += std::to_string(n);
    return out;
}

// Whole-string integer parse: nullopt on empty input, trailing garbage
// ("4x"), or overflow. std::stoll alone accepts prefixes, which every
// command-line and spec parser here must reject.
[[nodiscard]] inline std::optional<long long> parse_whole_int(
    const std::string& text) {
    std::size_t consumed = 0;
    long long value = 0;
    try {
        value = std::stoll(text, &consumed);
    } catch (const std::logic_error&) {
        consumed = 0;
    }
    if (consumed != text.size() || text.empty()) return std::nullopt;
    return value;
}

// "a" + 1, 2 -> "a1_2" (pod-style two-level names).
[[nodiscard]] inline std::string indexed(std::string_view prefix, long long a,
                                         long long b) {
    std::string out(prefix);
    out += std::to_string(a);
    out += '_';
    out += std::to_string(b);
    return out;
}

}  // namespace merlin
