// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace merlin {

// Splits on a single-character delimiter; empty fields preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char delim);

// Joins with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

// Trims ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view text);

// True if `text` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);

}  // namespace merlin
