// Error-handling primitives shared by every Merlin module.
//
// Construction-time failures (bad grammar, malformed topology files,
// inconsistent solver input) throw exceptions derived from `merlin::Error`.
// Expected run-time outcomes (an infeasible provisioning problem, a rejected
// policy refinement) are modelled as values, not exceptions.
#pragma once

#include <stdexcept>
#include <string>

namespace merlin {

// Root of the Merlin exception hierarchy.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// A syntactically or semantically invalid policy program.
class Parse_error : public Error {
public:
    Parse_error(std::string msg, int line, int column)
        : Error("parse error at " + std::to_string(line) + ":" +
                std::to_string(column) + ": " + msg),
          line_(line),
          column_(column) {}

    [[nodiscard]] int line() const { return line_; }
    [[nodiscard]] int column() const { return column_; }

private:
    int line_;
    int column_;
};

// Invalid topology description (unknown node, duplicate link, ...).
class Topology_error : public Error {
public:
    using Error::Error;
};

// A policy that violates the pre-processor requirements of Section 2.1
// (overlapping predicates, non-total coverage, unknown function names, ...).
class Policy_error : public Error {
public:
    using Error::Error;
};

// Internal invariant violation in a solver (not user-facing input errors).
class Solver_error : public Error {
public:
    using Error::Error;
};

// Precondition check used across the library. Throws `Solver_error`-style
// diagnostics for internal invariants; callers validate user input earlier.
inline void expects(bool condition, const char* message) {
    if (!condition) throw Error(std::string("invariant violated: ") + message);
}

}  // namespace merlin
