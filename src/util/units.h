// Bandwidth quantities and their textual forms.
//
// Merlin rate clauses carry units (the paper writes `50MB/s`, `1Gbps`,
// `100Mbps`). Internally every rate is a `Bandwidth`: a strong type holding
// bits per second, so MB/s (bytes) and Mbps (bits) cannot be confused.
#pragma once

#include <cstdint>
#include <string>

namespace merlin {

// A non-negative bandwidth in bits per second.
class Bandwidth {
public:
    constexpr Bandwidth() = default;
    constexpr explicit Bandwidth(std::uint64_t bits_per_second)
        : bps_(bits_per_second) {}

    [[nodiscard]] constexpr std::uint64_t bps() const { return bps_; }
    [[nodiscard]] constexpr double mbps() const {
        return static_cast<double>(bps_) / 1e6;
    }

    constexpr auto operator<=>(const Bandwidth&) const = default;

    constexpr Bandwidth& operator+=(Bandwidth other) {
        bps_ += other.bps_;
        return *this;
    }
    constexpr Bandwidth& operator-=(Bandwidth other) {
        bps_ = bps_ >= other.bps_ ? bps_ - other.bps_ : 0;
        return *this;
    }

private:
    std::uint64_t bps_ = 0;
};

[[nodiscard]] constexpr Bandwidth operator+(Bandwidth a, Bandwidth b) {
    return Bandwidth(a.bps() + b.bps());
}
[[nodiscard]] constexpr Bandwidth operator-(Bandwidth a, Bandwidth b) {
    return Bandwidth(a.bps() >= b.bps() ? a.bps() - b.bps() : 0);
}

// Convenience literal-style constructors.
[[nodiscard]] constexpr Bandwidth bits_per_sec(std::uint64_t n) {
    return Bandwidth(n);
}
[[nodiscard]] constexpr Bandwidth kbps(std::uint64_t n) {
    return Bandwidth(n * 1'000ULL);
}
[[nodiscard]] constexpr Bandwidth mbps(std::uint64_t n) {
    return Bandwidth(n * 1'000'000ULL);
}
[[nodiscard]] constexpr Bandwidth gbps(std::uint64_t n) {
    return Bandwidth(n * 1'000'000'000ULL);
}
// Byte-based units used by the paper's examples (`50MB/s`).
[[nodiscard]] constexpr Bandwidth mb_per_sec(std::uint64_t n) {
    return Bandwidth(n * 8'000'000ULL);
}
[[nodiscard]] constexpr Bandwidth gb_per_sec(std::uint64_t n) {
    return Bandwidth(n * 8'000'000'000ULL);
}

// Parses a rate such as "50MB/s", "1Gbps", "100kbps", "12bps", "1.5MB/s".
// Unit grammar (case-insensitive prefixes, exact suffix forms):
//   <number> (B/s | KB/s | MB/s | GB/s | bps | kbps | Mbps | Gbps)
// Throws Parse_error on malformed input.
[[nodiscard]] Bandwidth parse_bandwidth(const std::string& text);

// Renders a bandwidth using the largest exact decimal unit, e.g. "50MB/s"
// round-trips; falls back to "<n>bps".
[[nodiscard]] std::string to_string(Bandwidth bw);

}  // namespace merlin
